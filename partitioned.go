package qlove

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/wire"
)

// Partitioned is the horizontal form of the aggregation tier: N
// independent Aggregator replicas, each owning the logical keys that hash
// to it. A worker's push blob is split frame-by-frame (bit-verbatim, via
// the wire raw scanner) and routed to each frame's owner, queries route
// to the single owner of the key, and Snapshot unions the replicas'
// disjoint key sets — so every answer is bit-identical to a single
// aggregator folding the same pushes, while pushes and reads for
// different key partitions never contend at all.
//
// Every replica sees every worker's Apply (non-owners get an empty blob),
// so worker liveness — push-deadline staleness, Workers() — stays
// coherent across the partition exactly as in one process.
//
// Routing hashes the LOGICAL key (salted sub-stream names route with
// their base, keeping each key's whole salt group on one replica) with a
// fixed process-independent hash, so any router instance — in-process or
// the HTTP fan-in in internal/aggsrv — partitions identically.
type Partitioned struct {
	replicas []*Aggregator
}

// NewPartitioned returns n empty replicas configured by cfg. For the disk
// store each replica persists under its own cfg.Dir subdirectory
// ("replica-<i>"), so reopening the same directory with the same replica
// count recovers the whole partition.
func NewPartitioned(n int, cfg AggregatorConfig) (*Partitioned, error) {
	if n < 1 {
		return nil, fmt.Errorf("qlove: partitioned aggregator needs >= 1 replica, got %d", n)
	}
	p := &Partitioned{replicas: make([]*Aggregator, n)}
	for i := range p.replicas {
		rcfg := cfg
		if cfg.Store == "disk" && cfg.Dir != "" {
			rcfg.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("replica-%d", i))
		}
		a, err := NewAggregatorConfig(rcfg)
		if err != nil {
			for _, prev := range p.replicas[:i] {
				prev.Close()
			}
			return nil, err
		}
		p.replicas[i] = a
	}
	return p, nil
}

// Close releases every replica's store backend; the first error wins.
func (p *Partitioned) Close() error {
	var first error
	for _, a := range p.replicas {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DurabilityErr reports the first replica durability error, if any; see
// Aggregator.DurabilityErr.
func (p *Partitioned) DurabilityErr() error {
	for i, a := range p.replicas {
		if err := a.DurabilityErr(); err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
	}
	return nil
}

// Replicas returns the replica count.
func (p *Partitioned) Replicas() int { return len(p.replicas) }

// Replica returns one replica (e.g. to inspect per-partition state).
func (p *Partitioned) Replica(i int) *Aggregator { return p.replicas[i] }

// PartitionOf returns the replica index owning a logical key: FNV-1a of
// the base key, modulo the replica count. Exported so out-of-process
// routers (the aggsrv fan-in) and tests partition identically.
func PartitionOf(key string, replicas int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(replicas))
}

func (p *Partitioned) owner(base string) int { return PartitionOf(base, len(p.replicas)) }

// Apply splits one worker push blob across the owning replicas. The whole
// blob is scanned and routed before any replica folds, so a malformed
// blob is rejected up front with zero frames applied (unlike a single
// aggregator's partial fold — the worker re-bootstraps either way). On a
// fold error, frames already folded at their replicas remain applied and
// the count says how many.
func (p *Partitioned) Apply(worker string, r io.Reader) (int, error) {
	bufs := make([]bytes.Buffer, len(p.replicas))
	sc := wire.NewRawScanner(r)
	for {
		_, key, frame, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("qlove: partitioned apply worker %q: %w", worker, err)
		}
		bufs[p.owner(logicalKey(key))].Write(frame)
	}
	applied := 0
	for i, a := range p.replicas {
		// Every replica applies — an empty blob still registers the worker
		// and stamps its push deadline, keeping liveness partition-wide.
		n, err := a.Apply(worker, &bufs[i])
		applied += n
		if err != nil {
			return applied, err
		}
	}
	return applied, nil
}

// Query answers one logical key from its owning replica.
func (p *Partitioned) Query(key string) (Snapshot, bool, error) {
	return p.replicas[p.owner(key)].Query(key)
}

// Snapshot unions the replicas' views. Key sets are disjoint by
// construction, so the union is exactly the single-process snapshot.
func (p *Partitioned) Snapshot() (EngineSnapshot, error) {
	out := EngineSnapshot{keys: make(map[string]Snapshot)}
	for _, a := range p.replicas {
		snap, err := a.Snapshot()
		if err != nil {
			return EngineSnapshot{}, err
		}
		for k, sn := range snap.keys {
			out.keys[k] = sn
		}
	}
	return out, nil
}

// Workers returns the live-worker count (every replica sees every worker;
// the max rides over transient mid-Apply skews).
func (p *Partitioned) Workers() int {
	max := 0
	for _, a := range p.replicas {
		if n := a.Workers(); n > max {
			max = n
		}
	}
	return max
}

// Keys returns the distinct logical keys across the partition (disjoint
// per replica, so the sum).
func (p *Partitioned) Keys() int {
	n := 0
	for _, a := range p.replicas {
		n += a.Keys()
	}
	return n
}

// SetPushDeadline arms every replica's worker GC; see
// Aggregator.SetPushDeadline.
func (p *Partitioned) SetPushDeadline(d time.Duration, clock func() time.Time) {
	for _, a := range p.replicas {
		a.SetPushDeadline(d, clock)
	}
}

// SetPushDeadlineFromStored arms every replica's worker GC without
// re-dating recovered workers; see Aggregator.SetPushDeadlineFromStored.
func (p *Partitioned) SetPushDeadlineFromStored(d time.Duration, clock func() time.Time) {
	for _, a := range p.replicas {
		a.SetPushDeadlineFromStored(d, clock)
	}
}

// Sweep sweeps every replica, returning the MAX per-replica drop count —
// the number of workers retired partition-wide, since every replica hosts
// every worker.
func (p *Partitioned) Sweep() int {
	max := 0
	for _, a := range p.replicas {
		if n := a.Sweep(); n > max {
			max = n
		}
	}
	return max
}

// DropWorker forgets one worker on every replica.
func (p *Partitioned) DropWorker(worker string) bool {
	known := false
	for _, a := range p.replicas {
		if a.DropWorker(worker) {
			known = true
		}
	}
	return known
}

// Metrics reports every replica's metrics, in partition order.
func (p *Partitioned) Metrics() []AggregatorMetrics {
	out := make([]AggregatorMetrics, len(p.replicas))
	for i, a := range p.replicas {
		out[i] = a.Metrics()
	}
	return out
}
