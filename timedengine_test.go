package qlove

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/internal/workload"
)

func TestTimedEngineValidation(t *testing.T) {
	cfg := Config{Spec: Window{Size: 128, Period: 64}, Phis: []float64{0.5}}
	bad := []EngineConfig{
		{Config: cfg, TimedWindow: time.Second},                                // no period
		{Config: cfg, TimedWindow: time.Second, TimedPeriod: time.Minute},      // size < period
		{Config: cfg, TimedWindow: 90 * time.Second, TimedPeriod: time.Minute}, // non-multiple
		{Config: cfg, Tick: time.Second},                                       // tick without timed window
		{Config: cfg, TimedWindow: time.Minute, TimedPeriod: time.Second, Tick: -time.Second},
	}
	for i, ec := range bad {
		if _, err := NewEngine(ec); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	// A custom factory must produce policies that support time-driven
	// sealing; count-based baselines do not.
	cm, err := Registry().Bind("cmqs", cfg.Spec, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(EngineConfig{
		Factory: cm, Spec: cfg.Spec,
		TimedWindow: time.Minute, TimedPeriod: time.Second,
	}); err == nil {
		t.Fatal("timed engine accepted a policy without time-driven sealing")
	}
	// Tick on a count-based engine is a no-op, not a hang.
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Tick()
	eng.Close()
	eng.Tick()
}

// timedScript is one deterministic interleaved schedule: per epoch, the
// reports pushed (hot-key and noise), then one period advance and tick.
type timedScript struct {
	window, period time.Duration
	start          time.Time
	epochs         int
	// hotReports returns the hot key's reports for one epoch (nil = the
	// hot key is silent that epoch).
	hotReports func(epoch int) [][]float64
	noise      func(epoch int) map[string][]float64
}

// TestTimedEngineMatchesTimedMonitor is the equivalence gate of the timed
// plane: an Engine timed key driven by the injected fake clock — batches
// stamped at delivery, windows advanced by Engine.Tick — produces flush
// results AND exported snapshot bytes bit-identical to a single
// TimedMonitor fed the same interleaved stream and ticks, at every tested
// shard count.
func TestTimedEngineMatchesTimedMonitor(t *testing.T) {
	const hot = "svc/latency"
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.9, 0.99}, FewK: true}
	start := time.Date(2026, 7, 28, 15, 0, 0, 0, time.UTC)
	script := timedScript{
		window: 4 * time.Second,
		period: time.Second,
		start:  start,
		epochs: 24,
		hotReports: func(e int) [][]float64 {
			gen := workload.NewNetMon(int64(100 + e))
			switch {
			case e%5 == 3:
				return nil // silent epoch: the tick alone advances the window
			case e%4 == 0:
				// Two reports in one period; their combined volume crosses
				// the count Spec.Period, so the operator auto-seals
				// mid-period and the seal-count ring earns its keep.
				return [][]float64{workload.Generate(gen, 90), workload.Generate(gen, 75)}
			default:
				return [][]float64{workload.Generate(gen, 17+e*13%80)}
			}
		},
		noise: func(e int) map[string][]float64 {
			gen := workload.NewNetMon(int64(9000 + e))
			out := make(map[string][]float64)
			for i := 0; i < 6; i++ {
				out[fmt.Sprintf("noise-%d", i)] = workload.Generate(gen, 40)
			}
			return out
		},
	}

	// The reference: one TimedMonitor fed the hot key's sub-stream with
	// identical timestamps and ticks. Each epoch advances exactly one
	// period, so every boundary crossing happens inside a Flush and each
	// Flush returns its (single) evaluation.
	ref, err := NewTimedMonitor(mustQLOVE(t, cfg), script.window, script.period)
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	for e := 0; e < script.epochs; e++ {
		at := script.start.Add(time.Duration(e) * script.period)
		for _, vs := range script.hotReports(e) {
			if _, ok := ref.PushBatch(at, vs); ok {
				t.Fatalf("epoch %d: reference evaluated mid-report (script must cross boundaries only on ticks)", e)
			}
		}
		if res, ok := ref.Flush(at.Add(script.period)); ok {
			want = append(want, res)
		}
	}
	refSnap := ref.Policy().(Snapshotter).Snapshot()

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			clk := newFakeClock(script.start)
			eng, err := NewEngine(EngineConfig{
				Config:       cfg,
				Shards:       shards,
				ResultBuffer: 1 << 12,
				TimedWindow:  script.window,
				TimedPeriod:  script.period,
				Clock:        clk.now,
			})
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < script.epochs; e++ {
				for _, vs := range script.hotReports(e) {
					if err := eng.Push(hot, vs); err != nil {
						t.Fatal(err)
					}
				}
				for key, vs := range script.noise(e) {
					if err := eng.Push(key, vs); err != nil {
						t.Fatal(err)
					}
				}
				// Fence: a control round on every shard orders all queued
				// deliveries before the clock moves, so each batch is
				// stamped with this epoch's time.
				eng.Keys()
				clk.advance(script.period)
				eng.Tick()
			}
			engSnap, ok := eng.Query(hot)
			if !ok {
				t.Fatalf("hot key %q not monitored", hot)
			}
			eng.Close()
			var got []Result
			for kr := range eng.Results() {
				if kr.Key == hot {
					got = append(got, kr.Result)
				}
			}
			if eng.Dropped() != 0 {
				t.Fatalf("dropped %d results; grow ResultBuffer", eng.Dropped())
			}

			if len(got) != len(want) {
				t.Fatalf("hot key produced %d results, reference %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Evaluation != want[i].Evaluation {
					t.Fatalf("result %d: evaluation %d != %d", i, got[i].Evaluation, want[i].Evaluation)
				}
				for j := range want[i].Estimates {
					if math.Float64bits(got[i].Estimates[j]) != math.Float64bits(want[i].Estimates[j]) {
						t.Fatalf("result %d ϕ[%d]: engine %v != monitor %v",
							i, j, got[i].Estimates[j], want[i].Estimates[j])
					}
				}
			}

			// The exported capture is bit-identical too: same wire bytes.
			var engBlob, refBlob bytes.Buffer
			if _, err := wire.NewEncoder(&engBlob).Encode(hot, engSnap); err != nil {
				t.Fatal(err)
			}
			if _, err := wire.NewEncoder(&refBlob).Encode(hot, refSnap); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(engBlob.Bytes(), refBlob.Bytes()) {
				t.Fatalf("snapshot wire bytes diverge: engine %d bytes, monitor %d bytes",
					engBlob.Len(), refBlob.Len())
			}
		})
	}
}

// TestTimedEngineSoak is the concurrency gate of the timed plane (run with
// -race): one timed engine under simultaneous Push, shard ticks (fake
// clock advanced concurrently), ExportDelta, Snapshot, ImportSnapshots and
// wall-clock TTL eviction. Afterwards the cursor-folded aggregator state
// must equal a fresh full export exactly — same key set in both
// directions, bit-identical estimates.
func TestTimedEngineSoak(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	clk := newFakeClock(time.Unix(1_000_000, 0))
	const period = 100 * time.Millisecond
	eng, err := NewEngine(EngineConfig{
		Config:         cfg,
		Shards:         4,
		ResultBuffer:   1 << 12,
		TimedWindow:    4 * period,
		TimedPeriod:    period,
		KeyTTLDuration: 6 * period, // churn keys expire mid-run, exercising tombstones
		Clock:          clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)

	// A remote blob for the concurrent ImportSnapshots reader.
	remote, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	remoteDone := drainResults(remote)
	if err := remote.Push("hot-0", workload.Generate(workload.NewNetMon(77), 512)); err != nil {
		t.Fatal(err)
	}
	remote.Close()
	<-remoteDone
	var remoteBlob bytes.Buffer
	if _, err := remote.Export(&remoteBlob); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Pushers: a stable hot set plus a churning tail the TTL sweep evicts.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			gen := workload.NewNetMon(int64(1000 + p))
			for i := 0; !stop.Load(); i++ {
				var key string
				if rng.Intn(3) > 0 {
					key = fmt.Sprintf("hot-%d", rng.Intn(8))
				} else {
					key = fmt.Sprintf("churn-%d-%d", p, i%97)
				}
				if err := eng.Push(key, workload.Generate(gen, 32)); err != nil {
					return // engine closed under us: the run is over
				}
			}
		}(p)
	}

	// Ticker: the clock advances and every shard flushes, concurrent with
	// ingest — timed seals, window slides and TTL sweeps all race Push.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			clk.advance(period / 3)
			eng.Tick()
		}
	}()

	// Exporter: delta exports folded into the service-style aggregator.
	agg := NewAggregator()
	var cur ExportCursor
	var exports int
	var exportErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			var buf bytes.Buffer
			if _, err := eng.ExportDelta(&buf, &cur); err != nil {
				exportErr = fmt.Errorf("export %d: %w", exports, err)
				return
			}
			if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
				exportErr = fmt.Errorf("apply %d: %w", exports, err)
				return
			}
			exports++
		}
	}()

	// Reader: full snapshots, imports and point queries ride alongside.
	var readErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = eng.Snapshot()
			if _, err := eng.ImportSnapshots(bytes.NewReader(remoteBlob.Bytes())); err != nil {
				readErr = fmt.Errorf("import: %w", err)
				return
			}
			eng.Query("hot-3")
			eng.Keys()
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if exportErr != nil {
		t.Fatal(exportErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	eng.Close()
	<-done

	// Final flush + delta over the closed engine, then the identity check.
	clk.advance(period)
	eng.Tick()
	var buf bytes.Buffer
	if _, err := eng.ExportDelta(&buf, &cur); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if exports == 0 {
		t.Fatal("exporter never ran")
	}
	t.Logf("timed soak: %d concurrent delta exports, final state %d keys", exports, agg.Keys())
	requireSameView(t, agg, eng)
}
