package qlove

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/internal/workload"
)

// aggSurface is the aggregation surface every backend must serve
// identically — shared by *Aggregator (any store) and *Partitioned.
type aggSurface interface {
	Apply(worker string, r io.Reader) (int, error)
	Query(key string) (Snapshot, bool, error)
	Snapshot() (EngineSnapshot, error)
	Workers() int
	Keys() int
	SetPushDeadline(d time.Duration, clock func() time.Time)
	Sweep() int
	DropWorker(worker string) bool
}

// aggBackendCase names one backend configuration under conformance test.
type aggBackendCase struct {
	name string
	mk   func(t *testing.T) aggSurface
}

func mkAgg(t *testing.T, cfg AggregatorConfig) *Aggregator {
	t.Helper()
	a, err := NewAggregatorConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// aggBackends is the conformance matrix: every store backend, with and
// without the fold cache, the instrumented wrapper, a degenerate stripe
// count, and the partitioned fan-in.
func aggBackends() []aggBackendCase {
	return []aggBackendCase{
		{"map", func(t *testing.T) aggSurface { return mkAgg(t, AggregatorConfig{Store: "map"}) }},
		{"map-nocache", func(t *testing.T) aggSurface {
			return mkAgg(t, AggregatorConfig{Store: "map", NoFoldCache: true})
		}},
		{"striped", func(t *testing.T) aggSurface { return mkAgg(t, AggregatorConfig{}) }},
		{"striped-nocache", func(t *testing.T) aggSurface {
			return mkAgg(t, AggregatorConfig{NoFoldCache: true})
		}},
		{"striped-1", func(t *testing.T) aggSurface { return mkAgg(t, AggregatorConfig{Stripes: 1}) }},
		{"striped-instrumented", func(t *testing.T) aggSurface {
			return mkAgg(t, AggregatorConfig{Instrument: true})
		}},
		{"disk", func(t *testing.T) aggSurface {
			a := mkAgg(t, AggregatorConfig{Store: "disk", Dir: t.TempDir()})
			t.Cleanup(func() { a.Close() })
			return a
		}},
		{"disk-nocache", func(t *testing.T) aggSurface {
			a := mkAgg(t, AggregatorConfig{Store: "disk", Dir: t.TempDir(), NoFoldCache: true})
			t.Cleanup(func() { a.Close() })
			return a
		}},
		{"partitioned-3", func(t *testing.T) aggSurface {
			p, err := NewPartitioned(3, AggregatorConfig{})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	}
}

// snapshotBytes renders the backend's merged view to the deterministic
// wire encoding — the cross-backend bit-equality currency.
func snapshotBytes(t *testing.T, a aggSurface) []byte {
	t.Helper()
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireBitEqualViews asserts every backend's snapshot bytes and sampled
// query bits match the first backend's.
func requireBitEqualViews(t *testing.T, backends []aggBackendCase, surfaces []aggSurface, step string, queryKeys []string) {
	t.Helper()
	ref := snapshotBytes(t, surfaces[0])
	for i := 1; i < len(surfaces); i++ {
		if got := snapshotBytes(t, surfaces[i]); !bytes.Equal(got, ref) {
			t.Fatalf("%s: backend %q snapshot bytes diverge from %q (%d vs %d bytes)",
				step, backends[i].name, backends[0].name, len(got), len(ref))
		}
	}
	for _, key := range queryKeys {
		refSn, refOK, err := surfaces[0].Query(key)
		if err != nil {
			t.Fatalf("%s: %q query %q: %v", step, backends[0].name, key, err)
		}
		for i := 1; i < len(surfaces); i++ {
			sn, ok, err := surfaces[i].Query(key)
			if err != nil {
				t.Fatalf("%s: %q query %q: %v", step, backends[i].name, key, err)
			}
			if ok != refOK {
				t.Fatalf("%s: query %q: %q ok=%v, %q ok=%v",
					step, key, backends[i].name, ok, backends[0].name, refOK)
			}
			if !ok {
				continue
			}
			if sn.Streams() != refSn.Streams() || sn.Elements() != refSn.Elements() {
				t.Fatalf("%s: query %q shape diverges on %q", step, key, backends[i].name)
			}
			a, b := sn.Estimates(), refSn.Estimates()
			for j := range a {
				if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
					t.Fatalf("%s: query %q ϕ[%d]: %q %v != %q %v",
						step, key, j, backends[i].name, a[j], backends[0].name, b[j])
				}
			}
		}
	}
}

// TestAggregatorStoreConformanceDeltaFold drives the full delta lifecycle
// — bootstrap, growth, window slide, tombstone, recreation — through
// every backend at once, requiring each step's view to be bit-for-bit the
// engine's own full export AND bit-identical across backends.
func TestAggregatorStoreConformanceDeltaFold(t *testing.T) {
	backends := aggBackends()
	surfaces := make([]aggSurface, len(backends))
	for i, b := range backends {
		surfaces[i] = b.mk(t)
	}
	eng, err := NewEngine(EngineConfig{
		Config: Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.9, 0.99}, FewK: true},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	defer func() { eng.Close(); <-done }()

	var cur ExportCursor
	queryKeys := []string{"a", "b", "c", "d", "nope"}
	sync := func(step string) {
		t.Helper()
		var buf bytes.Buffer
		if _, err := eng.ExportDelta(&buf, &cur); err != nil {
			t.Fatal(err)
		}
		for i, s := range surfaces {
			if _, err := s.Apply("w0", bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("%s: %q: %v", step, backends[i].name, err)
			}
		}
		want := fullFold(t, eng)
		var wantBuf bytes.Buffer
		if _, err := want.WriteTo(&wantBuf); err != nil {
			t.Fatal(err)
		}
		if got := snapshotBytes(t, surfaces[0]); !bytes.Equal(got, wantBuf.Bytes()) {
			t.Fatalf("%s: %q snapshot diverges from the engine's full export", step, backends[0].name)
		}
		requireBitEqualViews(t, backends, surfaces, step, queryKeys)
	}

	gen := workload.NewNetMon(1)
	batch := func(n int) []float64 { return workload.Generate(gen, n) }
	pushAll(t, eng, map[string][]float64{"a": batch(100), "b": batch(40), "c": batch(500)})
	sync("bootstrap")
	pushAll(t, eng, map[string][]float64{"a": batch(300), "c": batch(700), "d": batch(64)})
	sync("growth")
	pushAll(t, eng, map[string][]float64{"c": batch(2000)})
	sync("slide")
	if !eng.Evict("b") {
		t.Fatal("evict b")
	}
	sync("tombstone")
	if !eng.Evict("a") {
		t.Fatal("evict a")
	}
	pushAll(t, eng, map[string][]float64{"a": batch(64)})
	sync("recreate")
	for i, s := range surfaces {
		if s.Workers() != 1 {
			t.Fatalf("%q: workers=%d, want 1", backends[i].name, s.Workers())
		}
		if s.Keys() != 3 {
			t.Fatalf("%q: keys=%d, want 3", backends[i].name, s.Keys())
		}
	}
}

// mkKeySnapshot builds one deterministic single-stream capture (to be
// re-encoded under arbitrary internal names).
func mkKeySnapshot(t *testing.T, cfg Config, seed int64, n int) Snapshot {
	t.Helper()
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	pushAll(t, eng, map[string][]float64{"x": workload.Generate(workload.NewNetMon(seed), n)})
	eng.Close()
	<-done
	snap := fullFold(t, eng)
	sn, ok := snap.Get("x")
	if !ok {
		t.Fatal("capture missing")
	}
	return sn
}

// TestAggregatorStoreConformanceSaltGroups exercises the salt-group
// algebra with hand-crafted frames on every backend: salted sub-stream
// bootstraps build a group that folds in [sub 0, sub 1, …] order; a full
// frame — under ANY name in the group — replaces the whole group (a full
// frame is the worker's complete folded view of the logical key); a
// sub-stream bootstrap retires only the base; a base bootstrap retires
// the whole group; tombstones retire exact names.
func TestAggregatorStoreConformanceSaltGroups(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	base := mkKeySnapshot(t, cfg, 11, 512)
	sub0 := mkKeySnapshot(t, cfg, 12, 448)
	sub1 := mkKeySnapshot(t, cfg, 13, 384)

	salted := func(j byte) string { return "k" + string([]byte{0, j}) }
	full := func(name string, sn Snapshot) []byte { return wire.AppendFrame(nil, name, sn) }
	bootstrap := func(name string, sn Snapshot) []byte {
		d, err := wire.NewDelta(sn, 0)
		if err != nil {
			t.Fatal(err)
		}
		return wire.AppendDeltaFrame(nil, name, d)
	}
	tomb := func(name string) []byte { return wire.AppendTombstoneFrame(nil, name) }

	merge := func(sns ...Snapshot) Snapshot {
		var out Snapshot
		var err error
		for _, sn := range sns {
			if out, err = out.Merge(sn); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}

	backends := aggBackends()
	surfaces := make([]aggSurface, len(backends))
	for i, b := range backends {
		surfaces[i] = b.mk(t)
	}
	applyAll := func(step string, blob []byte) {
		t.Helper()
		for i, s := range surfaces {
			if _, err := s.Apply("w", bytes.NewReader(blob)); err != nil {
				t.Fatalf("%s: %q: %v", step, backends[i].name, err)
			}
		}
	}
	requireK := func(step string, want Snapshot, wantStreams int) {
		t.Helper()
		requireBitEqualViews(t, backends, surfaces, step, []string{"k"})
		sn, ok, err := surfaces[0].Query("k")
		if err != nil || !ok {
			t.Fatalf("%s: query k: ok=%v err=%v", step, ok, err)
		}
		if sn.Streams() != wantStreams {
			t.Fatalf("%s: k has %d streams, want %d", step, sn.Streams(), wantStreams)
		}
		a, b := sn.Estimates(), want.Estimates()
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("%s: ϕ[%d] %v != reference fold %v", step, j, a[j], b[j])
			}
		}
	}

	grp := func(a, b Snapshot) []byte {
		return append(append([]byte(nil), bootstrap(salted(0), a)...), bootstrap(salted(1), b)...)
	}
	// Two salted sub-stream bootstraps: queries fold [sub 0, sub 1].
	applyAll("subs", grp(sub0, sub1))
	requireK("subs", merge(sub0, sub1), 2)
	for i, s := range surfaces {
		if s.Keys() != 1 {
			t.Fatalf("%q: salted sub-streams counted as %d logical keys", backends[i].name, s.Keys())
		}
	}
	// A full frame — the worker's complete folded view of the logical key —
	// replaces the WHOLE group, even when named after one sub-stream.
	applyAll("full-replaces-group", full(salted(0), base))
	requireK("full-replaces-group", base, 1)
	applyAll("base-full", full("k", base))
	requireK("base-full", base, 1)
	// A sub-stream bootstrap retires only the base; a second sub joins it.
	applyAll("sub-bootstrap", bootstrap(salted(0), sub0))
	requireK("sub-bootstrap", sub0, 1)
	applyAll("sub-joins", bootstrap(salted(1), sub1))
	requireK("sub-joins", merge(sub0, sub1), 2)
	// A base bootstrap (collapsed key coming home) retires the whole group.
	applyAll("base-bootstrap", bootstrap("k", base))
	requireK("base-bootstrap", base, 1)
	// Rebuild the group, then tombstone one exact sub-stream name.
	applyAll("regroup", grp(sub0, sub1))
	applyAll("tomb-sub0", tomb(salted(0)))
	requireK("tomb-sub0", sub1, 1)
	// Tombstoning the last name empties the key everywhere.
	applyAll("tomb-sub1", tomb(salted(1)))
	requireBitEqualViews(t, backends, surfaces, "emptied", []string{"k"})
	if _, ok, _ := surfaces[0].Query("k"); ok {
		t.Fatal("fully tombstoned key still served")
	}
	for i, s := range surfaces {
		if s.Keys() != 0 {
			t.Fatalf("%q: %d keys after full tombstone, want 0", backends[i].name, s.Keys())
		}
	}
}

// TestAggregatorStoreConformancePushDeadline runs the worker-GC lifecycle
// on every backend: staleness hides a silent worker immediately, sweeps
// reclaim it, re-bootstrap revives it, and occupancy counters track it
// all exactly.
func TestAggregatorStoreConformancePushDeadline(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}}
	mkBlob := func(seed int64, key string) []byte {
		eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		done := drainResults(eng)
		pushAll(t, eng, map[string][]float64{
			key:      workload.Generate(workload.NewNetMon(seed), 512),
			"shared": workload.Generate(workload.NewNetMon(seed+50), 256),
		})
		eng.Close()
		<-done
		var buf bytes.Buffer
		if _, err := eng.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	silentBlob := mkBlob(1, "only-silent")
	activeBlob := mkBlob(2, "only-active")

	for _, b := range aggBackends() {
		t.Run(b.name, func(t *testing.T) {
			clk := newFakeClock(time.Unix(5_000_000, 0))
			agg := b.mk(t)
			agg.SetPushDeadline(time.Minute, clk.now)
			apply := func(worker string, blob []byte) {
				t.Helper()
				if _, err := agg.Apply(worker, bytes.NewReader(blob)); err != nil {
					t.Fatal(err)
				}
			}
			apply("silent", silentBlob)
			apply("active", activeBlob)
			if agg.Workers() != 2 || agg.Keys() != 3 {
				t.Fatalf("workers=%d keys=%d, want 2/3", agg.Workers(), agg.Keys())
			}
			for i := 0; i < 4; i++ {
				clk.advance(45 * time.Second)
				apply("active", activeBlob)
			}
			// Silent is past the deadline: hidden from reads AND counters
			// before any explicit sweep.
			if agg.Workers() != 1 {
				t.Fatalf("workers=%d, want 1 after deadline", agg.Workers())
			}
			if _, ok, _ := agg.Query("only-silent"); ok {
				t.Fatal("silent worker's key still served")
			}
			sn, ok, err := agg.Query("shared")
			if err != nil || !ok || sn.Streams() != 1 {
				t.Fatalf("shared after silence: ok=%v streams=%d err=%v", ok, sn.Streams(), err)
			}
			if n := agg.Sweep(); n != 0 {
				t.Fatalf("Sweep dropped %d, want 0 (already swept on Apply)", n)
			}
			apply("silent", silentBlob)
			if agg.Workers() != 2 || agg.Keys() != 3 {
				t.Fatalf("after re-bootstrap: workers=%d keys=%d", agg.Workers(), agg.Keys())
			}
			clk.advance(2 * time.Minute)
			if n := agg.Sweep(); n != 2 {
				t.Fatalf("Sweep dropped %d workers, want 2", n)
			}
			if agg.Workers() != 0 || agg.Keys() != 0 {
				t.Fatalf("after sweep: workers=%d keys=%d", agg.Workers(), agg.Keys())
			}
		})
	}
}

// TestAggregatorFoldCache pins the cache's contract: repeated reads of an
// unchanged key hit; any mutation of the key, worker churn, or
// push-deadline staleness invalidates; hits return bit-identical
// snapshots; and a cache-disabled aggregator reports no cache at all.
func TestAggregatorFoldCache(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}}
	blobA := func() []byte {
		eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		done := drainResults(eng)
		pushAll(t, eng, map[string][]float64{"k": workload.Generate(workload.NewNetMon(7), 512)})
		eng.Close()
		<-done
		var buf bytes.Buffer
		if _, err := eng.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	agg := mkAgg(t, AggregatorConfig{})
	if _, err := agg.Apply("w", bytes.NewReader(blobA)); err != nil {
		t.Fatal(err)
	}
	first, ok, err := agg.Query("k")
	if err != nil || !ok {
		t.Fatalf("query: ok=%v err=%v", ok, err)
	}
	m0 := agg.Metrics()
	if m0.FoldCache == nil {
		t.Fatal("fold cache enabled but unreported")
	}
	for i := 0; i < 5; i++ {
		sn, ok, err := agg.Query("k")
		if err != nil || !ok {
			t.Fatalf("requery: ok=%v err=%v", ok, err)
		}
		a, b := sn.Estimates(), first.Estimates()
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("cached estimate ϕ[%d] %v != first read %v", j, a[j], b[j])
			}
		}
	}
	m1 := agg.Metrics()
	if hits := m1.FoldCache.Hits - m0.FoldCache.Hits; hits != 5 {
		t.Fatalf("5 unchanged re-reads produced %d cache hits", hits)
	}
	// A re-push of the same key invalidates: the next read re-folds.
	if _, err := agg.Apply("w", bytes.NewReader(blobA)); err != nil {
		t.Fatal(err)
	}
	preMiss := agg.Metrics().FoldCache.Misses
	if _, _, err := agg.Query("k"); err != nil {
		t.Fatal(err)
	}
	if m := agg.Metrics().FoldCache.Misses; m != preMiss+1 {
		t.Fatalf("mutated key still answered from cache (misses %d -> %d)", preMiss, m)
	}
	// A NEW worker invalidates reads of keys it holds (live-set change).
	if _, err := agg.Apply("w2", bytes.NewReader(blobA)); err != nil {
		t.Fatal(err)
	}
	sn, _, err := agg.Query("k")
	if err != nil {
		t.Fatal(err)
	}
	if sn.Streams() != 2 {
		t.Fatalf("after second worker: %d streams, want 2", sn.Streams())
	}
	// Negative caching: a missing key misses once, then hits.
	if _, ok, _ := agg.Query("ghost"); ok {
		t.Fatal("ghost key found")
	}
	preHit := agg.Metrics().FoldCache.Hits
	if _, ok, _ := agg.Query("ghost"); ok {
		t.Fatal("ghost key found")
	}
	if h := agg.Metrics().FoldCache.Hits; h != preHit+1 {
		t.Fatalf("negative entry did not hit (hits %d -> %d)", preHit, h)
	}
	// DropWorker changes the live set: cached folds covering it die.
	agg.DropWorker("w2")
	sn, ok, err = agg.Query("k")
	if err != nil || !ok || sn.Streams() != 1 {
		t.Fatalf("after drop: ok=%v streams=%d err=%v", ok, sn.Streams(), err)
	}
	// Push-deadline staleness invalidates without any mutation: the same
	// cached key must disappear the moment its only worker goes stale.
	clk := newFakeClock(time.Unix(5_000_000, 0))
	agg.SetPushDeadline(time.Minute, clk.now)
	if _, ok, _ := agg.Query("k"); !ok {
		t.Fatal("key vanished at arming")
	}
	clk.advance(2 * time.Minute)
	if _, ok, _ := agg.Query("k"); ok {
		t.Fatal("stale worker's key still served from the fold cache")
	}
	// NoFoldCache: no cache stats reported.
	if m := mkAgg(t, AggregatorConfig{NoFoldCache: true}).Metrics(); m.FoldCache != nil {
		t.Fatal("disabled fold cache still reported")
	}
}

// TestAggregatorMetricsInstrumented pins the instrumented wrapper: op
// counts appear, and the backend label names the wrapping.
func TestAggregatorMetricsInstrumented(t *testing.T) {
	agg := mkAgg(t, AggregatorConfig{Instrument: true})
	blob := wire.AppendTombstoneFrame(nil, "nothing") // cheapest valid frame
	if _, err := agg.Apply("w", bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := agg.Query("nothing"); err != nil {
		t.Fatal(err)
	}
	m := agg.Metrics()
	if m.Store.Backend != "striped+instrumented" {
		t.Fatalf("backend label %q", m.Store.Backend)
	}
	counts := map[string]int64{}
	for _, op := range m.Store.Ops {
		counts[op.Op] = op.Count
	}
	if counts["drop"] == 0 || counts["touch"] == 0 || counts["group"] == 0 {
		t.Fatalf("expected drop/touch/group ops recorded, got %v", counts)
	}
	if m := mkAgg(t, AggregatorConfig{}).Metrics(); len(m.Store.Ops) != 0 {
		t.Fatal("uninstrumented store reported op metrics")
	}
	if m := mkAgg(t, AggregatorConfig{}).Metrics(); m.Store.Backend != "striped" {
		t.Fatalf("default backend label %q", m.Store.Backend)
	}
}

// TestPartitionedRouting pins the fan-in's partition algebra: each
// logical key lives on exactly its PartitionOf owner, salted sub-streams
// follow their base, and a malformed blob is rejected before any replica
// folds a frame.
func TestPartitionedRouting(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5}, FewK: true}
	sn := mkKeySnapshot(t, cfg, 21, 300)
	p, err := NewPartitioned(3, AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var blob []byte
	for _, k := range keys {
		blob = wire.AppendFrame(blob, k, sn)
	}
	// Salted sub-stream bootstraps of a key, to prove group routing: they
	// retire alpha's base frame and leave a two-sub group on its owner.
	d, err := wire.NewDelta(sn, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob = wire.AppendDeltaFrame(blob, "alpha"+string([]byte{0, 0}), d)
	blob = wire.AppendDeltaFrame(blob, "alpha"+string([]byte{0, 1}), d)
	if _, err := p.Apply("w", bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		owner := PartitionOf(k, 3)
		for i := 0; i < 3; i++ {
			_, ok, err := p.Replica(i).Query(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (i == owner) {
				t.Fatalf("key %q on replica %d (owner %d): ok=%v", k, i, owner, ok)
			}
		}
	}
	// The salted sub-streams folded into alpha's owner: 2 streams there.
	snA, ok, err := p.Query("alpha")
	if err != nil || !ok || snA.Streams() != 2 {
		t.Fatalf("alpha: ok=%v streams=%d err=%v", ok, snA.Streams(), err)
	}
	// Every replica saw the worker, even pure non-owners of every key.
	for i := 0; i < 3; i++ {
		if p.Replica(i).Workers() != 1 {
			t.Fatalf("replica %d workers=%d, want 1", i, p.Replica(i).Workers())
		}
	}
	if p.Keys() != len(keys) {
		t.Fatalf("partition holds %d keys, want %d", p.Keys(), len(keys))
	}
	// A malformed blob is rejected up front: zero frames applied anywhere.
	before := p.Keys()
	if n, err := p.Apply("w2", strings.NewReader("garbage-not-a-frame")); err == nil || n != 0 {
		t.Fatalf("malformed blob: applied %d frames, err %v", n, err)
	}
	if p.Keys() != before {
		t.Fatal("malformed blob mutated state")
	}
}

// TestAggregatorStripedStress is the -race stress: concurrent multi-worker
// Applies (delta chains with periodic re-bootstraps), cached Queries,
// whole-view Snapshots, explicit Sweeps and worker drop/revive churn on
// the striped store — then a quiesced bit-equality check against a serial
// reference fold of each worker's final state.
func TestAggregatorStripedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	const workers = 4
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}

	// Each worker's push sequence: a bootstrap blob then delta blobs, all
	// pre-built serially so the concurrent phase is pure Apply traffic.
	blobs := make([][][]byte, workers)
	for w := 0; w < workers; w++ {
		eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		done := drainResults(eng)
		gen := workload.NewNetMon(int64(40 + w))
		var cur ExportCursor
		for round := 0; round < 6; round++ {
			batch := map[string][]float64{}
			for ki, k := range keys {
				if (round+ki+w)%3 != 0 { // staggered: not every key every round
					batch[k] = workload.Generate(gen, 128+64*((round+ki)%3))
				}
			}
			pushAll(t, eng, batch)
			var buf bytes.Buffer
			if _, err := eng.ExportDelta(&buf, &cur); err != nil {
				t.Fatal(err)
			}
			blobs[w] = append(blobs[w], buf.Bytes())
		}
		eng.Close()
		<-done
	}
	worker := func(w int) string { return fmt.Sprintf("worker-%03d", w) }

	agg := mkAgg(t, AggregatorConfig{})
	clk := newFakeClock(time.Unix(5_000_000, 0))
	agg.SetPushDeadline(time.Hour, clk.now) // armed, but nothing goes stale

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Appliers: each owns one worker stream (the contract: one worker's
	// pushes are serialized), cycling bootstrap -> deltas -> drop -> again,
	// always ENDING with a complete final cycle.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for cycle := 0; ; cycle++ {
				if cycle > 0 {
					agg.DropWorker(worker(w))
				}
				for _, blob := range blobs[w] {
					if _, err := agg.Apply(worker(w), bytes.NewReader(blob)); err != nil {
						t.Errorf("apply %s: %v", worker(w), err)
						return
					}
				}
				if stop.Load() && cycle > 0 {
					return
				}
			}
		}(w)
	}
	// Queriers: random keys, cache on.
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(q)))
			for !stop.Load() {
				if _, _, err := agg.Query(keys[rng.Intn(len(keys))]); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(q)
	}
	// Snapshotter + sweeper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := agg.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			agg.Sweep()
		}
	}()
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: every applier finished a complete final cycle, so the
	// resident state is each worker's full blob sequence — fold the same
	// sequences serially into a map-store reference and compare bits.
	ref := mkAgg(t, AggregatorConfig{Store: "map"})
	for w := 0; w < workers; w++ {
		for _, blob := range blobs[w] {
			if _, err := ref.Apply(worker(w), bytes.NewReader(blob)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var want, got bytes.Buffer
	refSnap, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refSnap.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	gotSnap, err := agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gotSnap.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("concurrent fold diverged from serial reference (%d vs %d bytes)",
			got.Len(), want.Len())
	}
}
