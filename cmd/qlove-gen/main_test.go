package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestRunGeneratesDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.bin")
	err := run([]string{"-dataset", "netmon", "-n", "1000", "-seed", "7", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1000 {
		t.Fatalf("generated %d values", len(data))
	}
	for _, v := range data {
		if v < 1 {
			t.Fatalf("implausible latency %v", v)
		}
	}
}

func TestRunAllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"netmon", "search", "normal", "uniform", "pareto", "ar1"} {
		out := filepath.Join(dir, name+".bin")
		if err := run([]string{"-dataset", name, "-n", "100", "-out", out}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := os.Stat(out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunBurstInjection(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "b.bin")
	err := run([]string{"-dataset", "netmon", "-n", "2000",
		"-burst-window", "1000", "-burst-period", "100", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2000 {
		t.Fatalf("generated %d values", len(data))
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-dataset", "netmon", "-n", "10"}); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run([]string{"-dataset", "bogus", "-n", "10", "-out", "/tmp/x"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-dataset", "netmon", "-n", "0", "-out", "/tmp/x"}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := run([]string{"-dataset", "netmon", "-n", "10", "-burst-window", "5", "-out", "/tmp/x"}); err == nil {
		t.Fatal("burst-window without burst-period accepted")
	}
}
