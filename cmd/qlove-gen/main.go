// Command qlove-gen generates the paper's synthetic datasets (§5.1, §5.4)
// to a file, in the binary dataset format (".bin") or one value per line.
//
// Usage:
//
//	qlove-gen -dataset netmon -n 10000000 -seed 1 -out netmon.bin
//	qlove-gen -dataset ar1 -psi 0.8 -n 1000000 -out ar1.csv
//	qlove-gen -dataset netmon -n 1000000 -burst-window 128000 \
//	          -burst-period 16000 -burst-phi 0.999 -out bursty.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qlove-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qlove-gen", flag.ContinueOnError)
	name := fs.String("dataset", "netmon", "netmon|search|normal|uniform|pareto|ar1")
	n := fs.Int("n", 1_000_000, "number of values")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output path (.bin = binary; required)")
	mean := fs.Float64("mean", 1e6, "normal/ar1 mean")
	stddev := fs.Float64("stddev", 5e4, "normal/ar1 standard deviation")
	lo := fs.Float64("lo", 90, "uniform lower bound")
	hi := fs.Float64("hi", 110, "uniform upper bound")
	psi := fs.Float64("psi", 0.5, "ar1 correlation coefficient")
	burstWindow := fs.Int("burst-window", 0, "inject §5.3 bursts for this window size (0 = off)")
	burstPeriod := fs.Int("burst-period", 0, "burst injection period")
	burstPhi := fs.Float64("burst-phi", 0.999, "burst target quantile")
	burstFactor := fs.Float64("burst-factor", 10, "burst multiplication factor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	var gen workload.Generator
	switch *name {
	case "netmon":
		gen = workload.NewNetMon(*seed)
	case "search":
		gen = workload.NewSearch(*seed)
	case "normal":
		gen = workload.NewNormal(*seed, *mean, *stddev)
	case "uniform":
		gen = workload.NewUniform(*seed, *lo, *hi)
	case "pareto":
		gen = workload.NewPaperPareto(*seed)
	case "ar1":
		gen = workload.NewAR1(*seed, *mean, *stddev, *psi)
	default:
		return fmt.Errorf("unknown dataset %q", *name)
	}
	data := workload.Generate(gen, *n)
	if *burstWindow > 0 {
		if *burstPeriod <= 0 {
			return fmt.Errorf("-burst-period required with -burst-window")
		}
		data = workload.InjectBursts(data, *burstWindow, *burstPeriod, *burstPhi, *burstFactor)
	}
	if err := dataset.SaveFile(*out, data); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s values to %s\n", len(data), *name, *out)
	return nil
}
