package main

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/aggsrv"
)

// TestDistPartitionDeterministic: partitioner state is a pure function of
// the report sequence, every worker index is in range, non-merge keys are
// sticky, and the merge key round-robins.
func TestDistPartitionDeterministic(t *testing.T) {
	o := defaultDistOptions(0.002, 1, 600, 3, 1.2)
	seq, err := materializeReports(o.multiKeyOptions)
	if err != nil {
		t.Fatal(err)
	}
	assign := func() map[string][]int {
		part := &distPartition{workers: o.Workers, mergeKey: mergeKey}
		out := map[string][]int{}
		_ = seq.each(func(key string, vs []float64) error {
			out[key] = append(out[key], part.assign(key))
			return nil
		})
		return out
	}
	a, b := assign(), assign()
	for key, ws := range a {
		for i, w := range ws {
			if w < 0 || w >= o.Workers {
				t.Fatalf("key %q report %d assigned to worker %d", key, i, w)
			}
			if b[key][i] != w {
				t.Fatalf("key %q report %d: assignment not deterministic", key, i)
			}
			if key != mergeKey && w != ws[0] {
				t.Fatalf("key %q split across workers %d and %d", key, ws[0], w)
			}
			if key == mergeKey && w != i%o.Workers {
				t.Fatalf("merge key report %d on worker %d, want %d", i, w, i%o.Workers)
			}
		}
	}
	if len(a[mergeKey]) < o.Workers {
		t.Fatalf("merge key reported %d times, want >= %d workers", len(a[mergeKey]), o.Workers)
	}
}

// TestDistributedPipelineInProcess: the worker/aggregator pipeline run
// in-process (engines -> wire blobs -> merge) passes both identity checks
// — the same code path the OS-process scenario exercises, minus exec.
func TestDistributedPipelineInProcess(t *testing.T) {
	o := defaultDistOptions(0.002, 1, 600, 3, 1.2)
	seq, err := materializeReports(o.multiKeyOptions)
	if err != nil {
		t.Fatal(err)
	}
	blobs := make([]bytes.Buffer, o.Workers)
	for w := 0; w < o.Workers; w++ {
		eng, err := qlove.NewEngine(qlove.EngineConfig{
			Config:       qlove.Config{Spec: o.Spec, Phis: o.Phis},
			Shards:       2,
			ResultBuffer: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for range eng.Results() {
			}
		}()
		part := &distPartition{workers: o.Workers, mergeKey: mergeKey}
		err = seq.each(func(key string, vs []float64) error {
			if part.assign(key) != w {
				return nil
			}
			return eng.Push(key, vs)
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
		if _, err := eng.Export(&blobs[w]); err != nil {
			t.Fatal(err)
		}
	}
	var agg qlove.EngineSnapshot
	for w := range blobs {
		var one qlove.EngineSnapshot
		if _, err := one.ReadFrom(bytes.NewReader(blobs[w].Bytes())); err != nil {
			t.Fatal(err)
		}
		if agg, err = agg.Merge(one); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Len() != o.Keys {
		t.Fatalf("aggregated %d keys, want %d", agg.Len(), o.Keys)
	}
	var run distRun
	if err := verifyDistributed(&run, agg, seq, o); err != nil {
		t.Fatal(err)
	}
	if !run.HotKeyConsistent {
		t.Fatal("hot-key estimates diverged from the single-monitor reference")
	}
	if !run.CrossMergeConsistent || run.CrossMergeStreams != o.Workers {
		t.Fatalf("cross-worker merge: consistent=%v streams=%d", run.CrossMergeConsistent, run.CrossMergeStreams)
	}
}

// TestServePipelineInProcess: the serve-mode worker body (interval delta
// pushes over real HTTP to an aggsrv service) run in-process for all K
// workers, then the three-way verification: service vs batch fold of the
// final full blobs, hot key vs a single Monitor, cross-worker merge vs the
// in-process merge — plus the bandwidth invariant the delta plane exists
// for.
func TestServePipelineInProcess(t *testing.T) {
	o := defaultDistOptions(0.002, 1, 600, 3, 1.2)
	o.Intervals = 4
	srv := httptest.NewServer(aggsrv.New(nil).Handler())
	defer srv.Close()

	outs := make([]bytes.Buffer, o.Workers)
	for w := 0; w < o.Workers; w++ {
		if err := runServeWorker(o, w, srv.URL, &outs[w]); err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	blobs := make([][]byte, o.Workers)
	var totalDelta, totalFull, lastDelta, lastFull int64
	for w := range outs {
		st, blob, err := parseServeWorkerOutput(outs[w].Bytes())
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		if len(st.DeltaBytes) != o.Intervals {
			t.Fatalf("worker %d pushed %d intervals, want %d", w, len(st.DeltaBytes), o.Intervals)
		}
		for i := range st.DeltaBytes {
			totalDelta += st.DeltaBytes[i]
			totalFull += st.FullBytes[i]
		}
		lastDelta += st.DeltaBytes[o.Intervals-1]
		lastFull += st.FullBytes[o.Intervals-1]
		blobs[w] = blob
	}
	agg, _, err := foldAndMeasure(blobs)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != o.Keys {
		t.Fatalf("batch fold has %d keys, want %d", agg.Len(), o.Keys)
	}

	consistent, serviceKeys, err := verifyService(srv.URL, agg)
	if err != nil {
		t.Fatal(err)
	}
	if !consistent || serviceKeys != o.Keys {
		t.Fatalf("service (%d keys) diverged from the batch fold", serviceKeys)
	}
	seq, err := materializeReports(o.multiKeyOptions)
	if err != nil {
		t.Fatal(err)
	}
	var run distRun
	if err := verifyDistributed(&run, agg, seq, o); err != nil {
		t.Fatal(err)
	}
	if !run.HotKeyConsistent || !run.CrossMergeConsistent {
		t.Fatalf("references diverged: hot=%v merge=%v", run.HotKeyConsistent, run.CrossMergeConsistent)
	}
	// The bandwidth cut: the steady-state delta interval must be strictly
	// cheaper than a full export at the same instant.
	if lastDelta >= lastFull {
		t.Fatalf("steady-state delta interval %d B >= full export %d B", lastDelta, lastFull)
	}
	t.Logf("serve pipeline: delta %d B total vs full %d B total; last interval %d vs %d B",
		totalDelta, totalFull, lastDelta, lastFull)
}
