package main

import (
	"fmt"
	"io"
	"runtime"
)

// The scaling matrix measures true multi-core ingest scaling: the same
// materialized workload is replayed at every GOMAXPROCS × shard-count
// combination, with one concurrent pusher per processor so the source tier
// is never the serial (Amdahl) bottleneck the single-threaded replay would
// impose. Pushers partition the sequence BY KEY — a key's reports always
// flow through the same pusher in sequence order — so per-key sub-streams
// keep their boundaries and the hot-key bit-equivalence check still holds
// at every point.

// scalingPoint is one matrix cell, emitted into the perf record's
// engine.scaling section.
type scalingPoint struct {
	GOMAXPROCS         int     `json:"gomaxprocs"`
	Shards             int     `json:"shards"`
	Pushers            int     `json:"pushers"`
	ThroughputMevS     float64 `json:"throughput_mev_s"`
	Speedup            float64 `json:"speedup"` // vs the 1-proc 1-shard cell
	ShardSkew          float64 `json:"shard_skew"`
	SnapshotConsistent bool    `json:"snapshot_consistent"`
}

// scalingProcs picks the GOMAXPROCS axis: powers of two up to NumCPU, the
// CPU count itself, and always at least {1, 2} so even a single-core host
// measures an oversubscribed point (concurrency without parallelism).
func scalingProcs() []int {
	max := runtime.NumCPU()
	procs := []int{1}
	for p := 2; p <= max; p *= 2 {
		procs = append(procs, p)
	}
	if last := procs[len(procs)-1]; last != max {
		procs = append(procs, max)
	}
	if len(procs) == 1 {
		procs = append(procs, 2)
	}
	return procs
}

// scalingShards thins the shard sweep to first / middle / last so the
// matrix stays procs × 3.
func scalingShards(shards []int) []int {
	pick := []int{shards[0]}
	if len(shards) > 2 {
		pick = append(pick, shards[len(shards)/2])
	}
	if len(shards) > 1 {
		pick = append(pick, shards[len(shards)-1])
	}
	return pick
}

// runScalingMatrix sweeps GOMAXPROCS × shards over the shared sequence.
// GOMAXPROCS is restored before returning.
func runScalingMatrix(o multiKeyOptions, seq reportSeq) ([]scalingPoint, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var points []scalingPoint
	var base float64
	for _, p := range scalingProcs() {
		runtime.GOMAXPROCS(p)
		for _, shards := range scalingShards(o.Shards) {
			run, err := runEngineScenarioPushers(o, seq, shards, p)
			if err != nil {
				return points, fmt.Errorf("gomaxprocs=%d shards=%d: %w", p, shards, err)
			}
			if base == 0 {
				base = run.ThroughputMevS
			}
			pt := scalingPoint{
				GOMAXPROCS:         p,
				Shards:             shards,
				Pushers:            run.Pushers,
				ThroughputMevS:     run.ThroughputMevS,
				ShardSkew:          run.ShardSkew,
				SnapshotConsistent: run.SnapshotConsistent,
			}
			if base > 0 {
				pt.Speedup = run.ThroughputMevS / base
			}
			points = append(points, pt)
			if !run.SnapshotConsistent {
				return points, fmt.Errorf("gomaxprocs=%d shards=%d: hot-key snapshot diverged under parallel pushers", p, shards)
			}
		}
	}
	return points, nil
}

// scalingExperiment prints the matrix as a table.
func scalingExperiment(w io.Writer, o multiKeyOptions) error {
	fmt.Fprintf(w, "GOMAXPROCS x shards ingest matrix: %d keys (zipf %.2f), %d-value reports, %d elements/cell, NumCPU=%d\n",
		o.Keys, o.Skew, o.Report, o.Elements, runtime.NumCPU())
	seq, err := materializeReports(o)
	if err != nil {
		return err
	}
	points, err := runScalingMatrix(o, seq)
	for _, pt := range points {
		fmt.Fprintf(w, "  procs=%-3d shards=%-3d pushers=%-3d throughput=%8.2f Mev/s  speedup=%.2fx  shard-skew=%.2f\n",
			pt.GOMAXPROCS, pt.Shards, pt.Pushers, pt.ThroughputMevS, pt.Speedup, pt.ShardSkew)
	}
	return err
}
