package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/loadgen"
)

// The openloop scenario benchmarks the Engine the way production load
// arrives: an OPEN-LOOP Poisson arrival process over a percentage mix of
// operations (push / query / export / evict), stepped up rate by rate
// until the engine can no longer sustain the offered load under a
// p99-latency SLA — the quantile system benchmarked by its own quantiles.
// Unlike the closed-loop multikey sweep (which measures how fast a tight
// ingest loop spins), this reports a max sustainable rate with explicit
// overload detection: the offered-vs-accepted divergence and the latency
// blow-up a queueing system shows when pushed past capacity.

// openLoopOptions parameterizes one openloop scenario run.
type openLoopOptions struct {
	Spec         qlove.Window
	Phis         []float64
	Keys         int
	Skew         float64
	Report       int // values per pushed report
	Shards       int
	Seed         int64
	Backpressure qlove.Backpressure
	Mix          loadgen.Mix
	StartRate    float64 // first ramp step, ops/s
	Factor       float64 // rate multiplier between steps
	MaxRate      float64
	StepDuration time.Duration
	SLA          time.Duration // p99 gate
	PushTimeout  time.Duration // PushContext bound; pushes past it count as shed load
}

// defaultOpenLoopOptions scales the scenario. Rates are NOT scaled by
// -scale (the ramp finds the ceiling itself); scale sizes the key universe.
func defaultOpenLoopOptions(scale float64, seed int64, keys int, skew float64) openLoopOptions {
	if keys <= 0 {
		keys = int(20_000 * scale)
		if keys < 200 {
			keys = 200
		}
	}
	shards := runtime.GOMAXPROCS(0)
	if shards < 4 {
		shards = 4
	}
	return openLoopOptions{
		Spec:         qlove.Window{Size: 512, Period: 128},
		Phis:         []float64{0.5, 0.9, 0.99},
		Keys:         keys,
		Skew:         skew,
		Report:       128,
		Shards:       shards,
		Seed:         seed,
		Backpressure: qlove.BackpressureBlock,
		Mix:          loadgen.Mix{Push: 90, Query: 6, Export: 2, Evict: 2},
		StartRate:    1000,
		Factor:       2,
		MaxRate:      128_000,
		StepDuration: 400 * time.Millisecond,
		SLA:          25 * time.Millisecond,
		PushTimeout:  100 * time.Millisecond,
	}
}

// engineTarget adapts an Engine to loadgen.Target over a pre-materialized
// report ring (generation off the measured path). All state is atomics —
// Do runs on many goroutines.
type engineTarget struct {
	eng         *qlove.Engine
	seq         reportSeq
	pushTimeout time.Duration
	idx         atomic.Uint64 // next report in the ring
	ridx        atomic.Uint64 // read-op key rotation
	eidx        atomic.Uint64 // evict-op key rotation
}

func (t *engineTarget) report(i uint64) (string, []float64) {
	r := int(i % uint64(len(t.seq.keys)))
	return t.seq.keys[r], t.seq.vals[r*t.seq.report : (r+1)*t.seq.report]
}

// Do implements loadgen.Target.
func (t *engineTarget) Do(op loadgen.Op) error {
	switch op {
	case loadgen.OpPush:
		key, vs := t.report(t.idx.Add(1) - 1)
		if t.pushTimeout <= 0 {
			return t.eng.Push(key, vs)
		}
		ctx, cancel := context.WithTimeout(context.Background(), t.pushTimeout)
		defer cancel()
		return t.eng.PushContext(ctx, key, vs)
	case loadgen.OpQuery:
		key, _ := t.report(t.ridx.Add(7) - 7) // stride decorrelates from pushes
		t.eng.Query(key)
		return nil
	case loadgen.OpExport:
		_, err := t.eng.ExportKeys(io.Discard, t.seq.hot)
		return err
	case loadgen.OpEvict:
		key, _ := t.report(t.eidx.Add(13) - 13)
		t.eng.Evict(key) // the ring re-creates it on its next report
		return nil
	}
	return fmt.Errorf("openloop: unknown op %v", op)
}

// openLoopStep is one measured ramp step, emitted into the perf record.
type openLoopStep struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AcceptedRPS float64 `json:"accepted_rps"`
	Offered     int     `json:"offered"`
	Completed   int     `json:"completed"`
	Errors      int     `json:"errors"`
	Abandoned   int     `json:"abandoned"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Sustainable bool    `json:"sustainable"`
	Reason      string  `json:"reason,omitempty"`
}

// openLoopRun is the scenario result (the perf record's "openloop"
// section).
type openLoopRun struct {
	Shards             int            `json:"shards"`
	Keys               int            `json:"keys"`
	ReportSize         int            `json:"report_size"`
	Backpressure       string         `json:"backpressure"`
	Mix                string         `json:"mix"`
	SLAP99Ms           float64        `json:"sla_p99_ms"`
	Steps              []openLoopStep `json:"steps"`
	MaxSustainableRPS  float64        `json:"max_sustainable_rps"`
	MaxSustainableMevS float64        `json:"max_sustainable_mev_s"` // push share × report size
	Evaluations        uint64         `json:"evaluations"`
	DroppedResults     uint64         `json:"dropped_results"`
	BlockedMs          float64        `json:"blocked_ms"`
	QueueHighWater     int            `json:"queue_high_water"`
	ShardSkew          float64        `json:"shard_skew"`
}

// runOpenLoop builds an engine, ramps the open-loop load against it and
// folds the engine's own stats plane into the result.
func runOpenLoop(o openLoopOptions) (openLoopRun, error) {
	seq, err := materializeReports(multiKeyOptions{
		Spec: o.Spec, Phis: o.Phis, Keys: o.Keys, Skew: o.Skew,
		Report: o.Report, Elements: o.Keys * o.Report * 4, Seed: o.Seed,
	})
	if err != nil {
		return openLoopRun{}, err
	}
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       qlove.Config{Spec: o.Spec, Phis: o.Phis},
		Shards:       o.Shards,
		QueueDepth:   256,
		ResultBuffer: 1 << 14,
		Backpressure: o.Backpressure,
	})
	if err != nil {
		return openLoopRun{}, err
	}
	var evals atomic.Uint64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Results() {
			evals.Add(1)
		}
	}()
	tgt := &engineTarget{eng: eng, seq: seq, pushTimeout: o.PushTimeout}
	ramp, err := loadgen.Ramp(context.Background(), loadgen.RampConfig{
		Start:        o.StartRate,
		Factor:       o.Factor,
		Max:          o.MaxRate,
		StepDuration: o.StepDuration,
		SLA:          o.SLA,
		Mix:          o.Mix,
		Seed:         o.Seed,
		Grace:        2 * o.PushTimeout,
	}, tgt)
	if err != nil {
		eng.Close()
		<-drained
		return openLoopRun{}, err
	}
	eng.Close()
	<-drained
	st := eng.Stats().Total()
	run := openLoopRun{
		Shards:             o.Shards,
		Keys:               o.Keys,
		ReportSize:         o.Report,
		Backpressure:       o.Backpressure.String(),
		Mix:                o.Mix.String(),
		SLAP99Ms:           float64(o.SLA) / 1e6,
		MaxSustainableRPS:  ramp.MaxSustainable,
		MaxSustainableMevS: ramp.MaxSustainable * float64(o.Mix.Push) / 100 * float64(o.Report) / 1e6,
		Evaluations:        evals.Load(),
		DroppedResults:     eng.Dropped(),
		BlockedMs:          float64(st.Blocked) / 1e6,
		QueueHighWater:     st.QueueHighWater,
		ShardSkew:          eng.Stats().Skew(),
	}
	for _, s := range ramp.Steps {
		run.Steps = append(run.Steps, openLoopStep{
			OfferedRPS:  s.Rate,
			AcceptedRPS: s.CompletedRate,
			Offered:     s.Offered,
			Completed:   s.Completed,
			Errors:      s.Errors,
			Abandoned:   s.Abandoned,
			P50Ms:       float64(s.P50) / 1e6,
			P99Ms:       float64(s.P99) / 1e6,
			Sustainable: s.Sustainable,
			Reason:      s.Reason,
		})
	}
	return run, nil
}

// openLoopExperiment prints the ramp as a table.
func openLoopExperiment(w io.Writer, o openLoopOptions) error {
	fmt.Fprintf(w, "open-loop SLA ramp: %d keys (zipf %.2f), %d shards, %s backpressure, mix %s, p99 SLA %v, GOMAXPROCS=%d\n",
		o.Keys, o.Skew, o.Shards, o.Backpressure, o.Mix, o.SLA, runtime.GOMAXPROCS(0))
	run, err := runOpenLoop(o)
	if err != nil {
		return err
	}
	for _, s := range run.Steps {
		verdict := "sustainable"
		if !s.Sustainable {
			verdict = "OVERLOAD: " + s.Reason
		}
		fmt.Fprintf(w, "  offered=%8.0f/s accepted=%8.0f/s p50=%7.2fms p99=%7.2fms errs=%-4d abandoned=%-4d %s\n",
			s.OfferedRPS, s.AcceptedRPS, s.P50Ms, s.P99Ms, s.Errors, s.Abandoned, verdict)
	}
	fmt.Fprintf(w, "  max sustainable: %.0f ops/s (~%.2f Mev/s pushed) under p99<=%v\n",
		run.MaxSustainableRPS, run.MaxSustainableMevS, o.SLA)
	fmt.Fprintf(w, "  engine: evals=%d dropped=%d blocked=%.1fms queue-high-water=%d shard-skew=%.2f\n",
		run.Evaluations, run.DroppedResults, run.BlockedMs, run.QueueHighWater, run.ShardSkew)
	return nil
}
