package main

// The aggregator scenario benches the AGGREGATION TIER itself — not the
// engines feeding it: concurrent worker pushes (full-blob re-applies, so
// every apply is replace-idempotent and the final state is deterministic)
// against concurrent key queries, swept across goroutine counts and key
// cardinalities, for every store backend (single-map, lock-striped,
// striped+instrumented, partitioned fan-in). After each backend's sweep
// its quiesced merged view is compared bit-for-bit against a serial fold
// on the single-map reference — the throughput numbers are only
// comparable because the answers are identical.

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/workload"
)

// aggBenchOptions parameterizes the aggregator-tier sweep.
type aggBenchOptions struct {
	Spec        qlove.Window
	Phis        []float64
	Workers     int   // pushing worker identities (and fixture blobs)
	KeyCounts   []int // key cardinalities to sweep
	Elements    int   // per-worker elements behind each fixture blob
	Concurrency []int // concurrent pusher (and querier) counts to sweep
	CellMillis  int   // measured duration of one sweep cell
	Seed        int64
	// Strict gates the sweep: at each key count's top concurrency point
	// the striped backend must reach the single-map backend's combined
	// throughput (the CI perf floor for the lock-striping work).
	Strict bool
}

func defaultAggBenchOptions(scale float64, seed int64, keys int) aggBenchOptions {
	kc := []int{64, 512}
	if keys > 0 {
		kc = []int{keys}
	} else if scale < 0.2 {
		kc = []int{32, 128}
	}
	conc := []int{1, 2}
	if max := runtime.GOMAXPROCS(0); max >= 4 {
		conc = append(conc, 4)
	}
	elements := int(400_000 * scale)
	return aggBenchOptions{
		Spec:        qlove.Window{Size: 512, Period: 128},
		Phis:        []float64{0.5, 0.9, 0.99},
		Workers:     4,
		KeyCounts:   kc,
		Elements:    elements,
		Concurrency: conc,
		CellMillis:  120,
		Seed:        seed,
	}
}

// aggBenchRun is one sweep cell, emitted into the -json perf record.
type aggBenchRun struct {
	Backend       string  `json:"backend"`
	Keys          int     `json:"keys"`
	Pushers       int     `json:"pushers"`
	Queriers      int     `json:"queriers"`
	PushesPerSec  float64 `json:"pushes_per_sec"`
	FramesPerSec  float64 `json:"frames_per_sec"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// aggBenchSection is the perf record's aggregator-tier section.
type aggBenchSection struct {
	Workers    int           `json:"workers"`
	Runs       []aggBenchRun `json:"runs"`
	Consistent bool          `json:"consistent"`
}

// aggBenchBackend is one store configuration under the sweep.
type aggBenchBackend struct {
	name string
	mk   func() (aggTarget, error)
}

// aggTarget is the benched surface, shared by *qlove.Aggregator and
// *qlove.Partitioned.
type aggTarget interface {
	Apply(worker string, r io.Reader) (int, error)
	Query(key string) (qlove.Snapshot, bool, error)
	Snapshot() (qlove.EngineSnapshot, error)
}

func aggBenchBackends(workers int) []aggBenchBackend {
	mk := func(cfg qlove.AggregatorConfig) func() (aggTarget, error) {
		return func() (aggTarget, error) { return qlove.NewAggregatorConfig(cfg) }
	}
	return []aggBenchBackend{
		{"map", mk(qlove.AggregatorConfig{Store: "map"})},
		{"striped", mk(qlove.AggregatorConfig{})},
		{"striped+instrumented", mk(qlove.AggregatorConfig{Instrument: true})},
		{fmt.Sprintf("partitioned-%d", workers), func() (aggTarget, error) {
			return qlove.NewPartitioned(workers, qlove.AggregatorConfig{})
		}},
	}
}

// aggBenchFixture is the prebuilt push traffic for one key count: each
// worker's full-export blob (and the shared key list for queriers).
type aggBenchFixture struct {
	blobs [][]byte
	keys  []string
}

// materializeAggBench builds one fixture: each worker ingests its own
// deterministic keyed workload over the SAME key universe (so every key
// has a capture on every worker and cross-worker merges are exercised on
// every query) and exports one full blob.
func materializeAggBench(o aggBenchOptions, keys int) (aggBenchFixture, error) {
	fx := aggBenchFixture{blobs: make([][]byte, o.Workers)}
	elements := o.Elements
	if min := 2 * o.Spec.Period * keys; elements < min {
		elements = min // every key's capture survives the enumeration pass
	}
	for w := 0; w < o.Workers; w++ {
		gen, err := workload.NewKeyed(o.Seed+int64(w), keys, 1.1, workload.NewNetMon(o.Seed+int64(100+w)))
		if err != nil {
			return aggBenchFixture{}, err
		}
		eng, err := qlove.NewEngine(qlove.EngineConfig{
			Config: qlove.Config{Spec: o.Spec, Phis: o.Phis},
			Shards: 2,
		})
		if err != nil {
			return aggBenchFixture{}, err
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range eng.Results() {
			}
		}()
		vals := make([]float64, o.Spec.Period)
		for i := 0; i < keys; i++ {
			gen.Values(vals)
			if err := eng.Push(gen.Key(i), vals); err != nil {
				return aggBenchFixture{}, err
			}
		}
		for seen := keys * o.Spec.Period; seen < elements; seen += o.Spec.Period {
			key, _ := gen.NextReport(vals)
			if err := eng.Push(key, vals); err != nil {
				return aggBenchFixture{}, err
			}
		}
		eng.Close()
		<-drained
		var buf bytes.Buffer
		if _, err := eng.Export(&buf); err != nil {
			return aggBenchFixture{}, err
		}
		fx.blobs[w] = buf.Bytes()
		if w == 0 {
			for i := 0; i < keys; i++ {
				fx.keys = append(fx.keys, gen.Key(i))
			}
		}
	}
	return fx, nil
}

// runAggBenchCell drives one cell: `pushers` goroutines re-applying their
// workers' full blobs (each goroutine owns a disjoint worker subset, so
// the per-worker serialization contract holds) against `queriers`
// goroutines scanning the key list, for the cell duration. Pushers stop
// only between complete blob applies, so the quiesced state is exactly
// "every worker's blob applied".
func runAggBenchCell(o aggBenchOptions, fx aggBenchFixture, agg aggTarget, pushers, queriers int) (aggBenchRun, error) {
	run := aggBenchRun{Pushers: pushers, Queriers: queriers, Keys: len(fx.keys)}
	var stop atomic.Bool
	var pushes, frames, queries atomic.Int64
	errc := make(chan error, pushers+queriers)
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for !stop.Load() {
				for w := p; w < o.Workers; w += pushers {
					n, err := agg.Apply(serveWorkerID(w), bytes.NewReader(fx.blobs[w]))
					if err != nil {
						errc <- fmt.Errorf("apply worker %d: %w", w, err)
						return
					}
					pushes.Add(1)
					frames.Add(int64(n))
				}
			}
		}(p)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := q; !stop.Load(); i++ {
				if _, _, err := agg.Query(fx.keys[i%len(fx.keys)]); err != nil {
					errc <- fmt.Errorf("query: %w", err)
					return
				}
				queries.Add(1)
			}
		}(q)
	}
	start := time.Now()
	time.Sleep(time.Duration(o.CellMillis) * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case err := <-errc:
		return run, err
	default:
	}
	run.PushesPerSec = float64(pushes.Load()) / elapsed
	run.FramesPerSec = float64(frames.Load()) / elapsed
	run.QueriesPerSec = float64(queries.Load()) / elapsed
	return run, nil
}

// aggBenchReference folds the fixture serially on the single-map backend
// and renders the merged view to wire bytes.
func aggBenchReference(fx aggBenchFixture) ([]byte, error) {
	ref, err := qlove.NewAggregatorConfig(qlove.AggregatorConfig{Store: "map"})
	if err != nil {
		return nil, err
	}
	for w, blob := range fx.blobs {
		if _, err := ref.Apply(serveWorkerID(w), bytes.NewReader(blob)); err != nil {
			return nil, fmt.Errorf("reference fold worker %d: %w", w, err)
		}
	}
	snap, err := ref.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runAggBench executes the full sweep: every key count × backend ×
// concurrency point, with the bit-equality check after each backend's
// sweep and the optional striped-vs-map strict gate (retried a few times
// before failing — it compares two live measurements on a shared
// machine).
func runAggBench(o aggBenchOptions) (aggBenchSection, error) {
	sec := aggBenchSection{Workers: o.Workers, Consistent: true}
	for _, keys := range o.KeyCounts {
		fx, err := materializeAggBench(o, keys)
		if err != nil {
			return sec, fmt.Errorf("keys=%d: %w", keys, err)
		}
		want, err := aggBenchReference(fx)
		if err != nil {
			return sec, fmt.Errorf("keys=%d: %w", keys, err)
		}
		topOps := map[string]float64{}
		for _, b := range aggBenchBackends(o.Workers) {
			agg, err := b.mk()
			if err != nil {
				return sec, err
			}
			for _, c := range o.Concurrency {
				run, err := runAggBenchCell(o, fx, agg, c, c)
				if err != nil {
					return sec, fmt.Errorf("keys=%d backend=%s conc=%d: %w", keys, b.name, c, err)
				}
				run.Backend = b.name
				sec.Runs = append(sec.Runs, run)
				if c == o.Concurrency[len(o.Concurrency)-1] {
					topOps[b.name] = run.PushesPerSec + run.QueriesPerSec
				}
			}
			snap, err := agg.Snapshot()
			if err != nil {
				return sec, err
			}
			var got bytes.Buffer
			if _, err := snap.WriteTo(&got); err != nil {
				return sec, err
			}
			if !bytes.Equal(got.Bytes(), want) {
				sec.Consistent = false
				return sec, fmt.Errorf("keys=%d: backend %s quiesced view diverges from the single-map serial fold", keys, b.name)
			}
		}
		if o.Strict {
			top := o.Concurrency[len(o.Concurrency)-1]
			ok := topOps["striped"] >= topOps["map"]
			for attempt := 0; !ok && attempt < 3; attempt++ {
				// Re-measure both cells back to back: a single noisy cell on
				// a shared runner must not fail the floor.
				var striped, mp float64
				for _, name := range []string{"map", "striped"} {
					cfg := qlove.AggregatorConfig{Store: name}
					if name == "striped" {
						cfg = qlove.AggregatorConfig{}
					}
					agg, err := qlove.NewAggregatorConfig(cfg)
					if err != nil {
						return sec, err
					}
					run, err := runAggBenchCell(o, fx, agg, top, top)
					if err != nil {
						return sec, err
					}
					if name == "striped" {
						striped = run.PushesPerSec + run.QueriesPerSec
					} else {
						mp = run.PushesPerSec + run.QueriesPerSec
					}
				}
				topOps["striped"], topOps["map"] = striped, mp
				ok = striped >= mp
			}
			if !ok {
				return sec, fmt.Errorf("keys=%d: striped backend below single-map at concurrency %d (%.0f < %.0f ops/s)",
					keys, top, topOps["striped"], topOps["map"])
			}
		}
	}
	return sec, nil
}

// aggregatorExperiment prints the sweep as text.
func aggregatorExperiment(w io.Writer, o aggBenchOptions) error {
	fmt.Fprintf(w, "aggregation tier: %d workers re-pushing full blobs vs concurrent queries, key counts %v, concurrency %v, %dms cells\n",
		o.Workers, o.KeyCounts, o.Concurrency, o.CellMillis)
	sec, err := runAggBench(o)
	for _, r := range sec.Runs {
		fmt.Fprintf(w, "  keys=%-5d %-22s pushers=%d queriers=%d  %8.0f pushes/s %10.0f frames/s %10.0f queries/s\n",
			r.Keys, r.Backend, r.Pushers, r.Queriers, r.PushesPerSec, r.FramesPerSec, r.QueriesPerSec)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  quiesced views vs single-map serial fold: bit-identical\n")
	return nil
}
