package main

// The resize scenario gates the replicated hash-slot tier end to end over
// real sockets:
//
//   - Quorum fan-out: two replica servers behind the router at
//     replication 2 — every hash slot owned by both. A worker's delta
//     chain keeps pushing while one replica is killed mid-chain: pushes
//     must keep succeeding on quorum (1 of 2), reads fail over to the
//     survivor, and when the replica returns EMPTY on its old address the
//     router's resync must rebuild it from its peer — after which the
//     revived replica's own /snapshot, and the router's, must be
//     bit-identical to an uninterrupted single-server reference.
//   - Live growth: three replica servers, but an initial slot table that
//     spans only the first two. The third is grown in by moving its
//     canonical share of hash slots via POST /slots/move while the
//     worker's delta chain keeps pushing: only the moved slots may change
//     replica, /query must answer bit-identically to the reference
//     before, during, and after, and the chain must keep folding across
//     the migration (the replay carries the worker's seal cursors).
//
// Like resilience, this is a verification gate: the latencies printed are
// informational, the bit-identity and availability verdicts fail the run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"time"

	"repro"
	"repro/internal/aggsrv"
)

// resizeOptions parameterizes the scenario; the workload is intentionally
// small — identity, not throughput, is under test.
type resizeOptions struct {
	Seed   int64
	Rounds int // delta rounds per phase; the kill/migration lands mid-chain
	Keys   int // logical keys in the worker's chain
}

func defaultResizeOptions(seed int64) resizeOptions {
	return resizeOptions{Seed: seed, Rounds: 6, Keys: 12}
}

// resizeReplica is one in-process replica server on a real socket.
type resizeReplica struct {
	addr string
	srv  *http.Server
}

func serveResize(addr string, h http.Handler) (resizeReplica, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return resizeReplica{}, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return resizeReplica{addr: ln.Addr().String(), srv: srv}, nil
}

// resizeWorker drives one salted engine's delta chain; the same blob goes
// to the router and the reference so cursors stay in lockstep.
type resizeWorker struct {
	eng    *qlove.Engine
	cursor qlove.ExportCursor
	rnd    *rand.Rand
	keys   []string
}

func newResizeWorker(o resizeOptions) (*resizeWorker, error) {
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       qlove.Config{Spec: qlove.Window{Size: 512, Period: 128}, Phis: []float64{0.5, 0.9, 0.99}},
		Shards:       2,
		RouteSalt:    2,
		ResultBuffer: 1 << 14,
	})
	if err != nil {
		return nil, err
	}
	go func() {
		for range eng.Results() {
		}
	}()
	rw := &resizeWorker{eng: eng, rnd: rand.New(rand.NewSource(o.Seed))}
	for k := 0; k < o.Keys; k++ {
		rw.keys = append(rw.keys, fmt.Sprintf("key-%03d", k))
	}
	return rw, nil
}

// round ingests one batch per key, exports one delta blob, and pushes the
// same bytes to every target.
func (rw *resizeWorker) round(client *http.Client, targets ...string) error {
	for _, key := range rw.keys {
		vs := make([]float64, 128)
		for i := range vs {
			vs[i] = rw.rnd.Float64() * 1000
		}
		if err := rw.eng.Push(key, vs); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	if _, err := rw.eng.ExportDelta(&buf, &rw.cursor); err != nil {
		return err
	}
	for _, base := range targets {
		if err := httpPushBlob(client, base, "worker-000", buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// querySweepIdentical compares every key's /query answer (status and
// bytes) between the router and the reference.
func querySweepIdentical(client *http.Client, routerBase, refBase string, keys []string) (bool, error) {
	fetch := func(base, key string) (int, []byte, error) {
		resp, err := client.Get(base + "/query?key=" + url.QueryEscape(key))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}
	for _, key := range keys {
		gs, gb, err := fetch(routerBase, key)
		if err != nil {
			return false, err
		}
		ws, wb, err := fetch(refBase, key)
		if err != nil {
			return false, err
		}
		if gs != ws || !bytes.Equal(gb, wb) {
			return false, nil
		}
	}
	return true, nil
}

// resizeQuorumStats is the quorum/resync phase's half of the report.
type resizeQuorumStats struct {
	KillAfter        int           `json:"kill_after_round"`
	PushOnQuorum     bool          `json:"push_on_quorum"`
	DegradedServed   bool          `json:"degraded_served"`
	Resynced         bool          `json:"resynced"`
	ReplicaIdentical bool          `json:"replica_identical"`
	FinalIdentical   bool          `json:"final_identical"`
	ResyncLatency    time.Duration `json:"-"`
}

// resizeQuorum runs the replication phase: kill one of two full-copy
// replicas mid-chain, keep pushing on quorum, revive it empty, and require
// the resync to land everything bit-identical to the reference.
func resizeQuorum(o resizeOptions) (resizeQuorumStats, error) {
	st := resizeQuorumStats{KillAfter: o.Rounds / 2}
	reps := make([]resizeReplica, 2)
	for i := range reps {
		r, err := serveResize("127.0.0.1:0", aggsrv.New(nil).Handler())
		if err != nil {
			return st, err
		}
		reps[i] = r
		defer r.srv.Close()
	}
	fanin, err := aggsrv.NewFaninConfig(aggsrv.FaninConfig{
		Replicas:      []string{"http://" + reps[0].addr, "http://" + reps[1].addr},
		Replication:   2,
		Timeout:       2 * time.Second,
		Retries:       1,
		RetryBackoff:  time.Millisecond,
		FailThreshold: 2,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return st, err
	}
	defer fanin.Close()
	router, err := serveResize("127.0.0.1:0", fanin.Handler())
	if err != nil {
		return st, err
	}
	defer router.srv.Close()
	base := "http://" + router.addr
	ref, err := serveResize("127.0.0.1:0", aggsrv.New(nil).Handler())
	if err != nil {
		return st, err
	}
	defer ref.srv.Close()
	refBase := "http://" + ref.addr

	rw, err := newResizeWorker(o)
	if err != nil {
		return st, err
	}
	defer rw.eng.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	for r := 0; r < st.KillAfter; r++ {
		if err := rw.round(client, base, refBase); err != nil {
			return st, err
		}
	}

	// Kill replica 0; its address stays ours for the revival below.
	reps[0].srv.Close()

	// Mid-chain push with one owner down: quorum is 1 of 2, so this must
	// succeed — the surviving owner folds the delta, the ack is 200.
	err = rw.round(client, base, refBase)
	st.PushOnQuorum = err == nil
	if err != nil {
		return st, nil
	}
	if st.DegradedServed, err = querySweepIdentical(client, base, refBase, rw.keys); err != nil {
		return st, err
	}

	// Revive replica 0 on the SAME address, fresh and EMPTY — the worst
	// case. The probe reinstates it; the resync replays its slots from the
	// surviving peer; /healthz goes "ok" only when it is live AND clean.
	revived, err := serveResize(reps[0].addr, aggsrv.New(nil).Handler())
	if err != nil {
		return st, fmt.Errorf("revive replica 0: %w", err)
	}
	defer revived.srv.Close()
	reinstate := time.Now()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !st.Resynced {
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			return st, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var h aggsrv.FaninHealth
		if json.Unmarshal(body, &h) == nil && h.Status == "ok" {
			st.Resynced = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	st.ResyncLatency = time.Since(reinstate)
	if !st.Resynced {
		return st, nil
	}

	// The rebuilt replica answers its OWN /snapshot bit-identically to the
	// reference — the resync restored the lost copy exactly, cursors
	// included.
	gotReplica, err := httpSnapshotBytes(client, "http://"+revived.addr)
	if err != nil {
		return st, err
	}
	want, err := httpSnapshotBytes(client, refBase)
	if err != nil {
		return st, err
	}
	st.ReplicaIdentical = bytes.Equal(gotReplica, want)

	// Finish the chain on both: the next deltas fold on BOTH replicas with
	// no re-bootstrap.
	for r := st.KillAfter; r < o.Rounds; r++ {
		if err := rw.round(client, base, refBase); err != nil {
			return st, err
		}
	}
	got, err := httpSnapshotBytes(client, base)
	if err != nil {
		return st, err
	}
	want, err = httpSnapshotBytes(client, refBase)
	if err != nil {
		return st, err
	}
	st.FinalIdentical = bytes.Equal(got, want)
	return st, nil
}

// resizeGrowStats is the live-growth phase's half of the report.
type resizeGrowStats struct {
	SlotsMoved     int  `json:"slots_moved"`
	MidIdentical   bool `json:"mid_identical"`
	MovedOnly      bool `json:"moved_only"`
	TableFlipped   bool `json:"table_flipped"`
	FinalIdentical bool `json:"final_identical"`
}

// resizeGrow runs the growth phase: an N=2 slot table over three live
// replicas, grown to N=3 by moving the third replica's canonical slot
// share one slot at a time, interleaved with the worker's delta rounds.
func resizeGrow(o resizeOptions) (resizeGrowStats, error) {
	var st resizeGrowStats
	initial, err := qlove.NewSlotMap(2, 1)
	if err != nil {
		return st, err
	}
	reps := make([]resizeReplica, 3)
	urls := make([]string, 3)
	for i := range reps {
		r, err := serveResize("127.0.0.1:0", aggsrv.New(nil).Handler())
		if err != nil {
			return st, err
		}
		reps[i] = r
		urls[i] = "http://" + r.addr
		defer r.srv.Close()
	}
	fanin, err := aggsrv.NewFaninConfig(aggsrv.FaninConfig{
		Replicas: urls,
		Slots:    initial,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		return st, err
	}
	defer fanin.Close()
	router, err := serveResize("127.0.0.1:0", fanin.Handler())
	if err != nil {
		return st, err
	}
	defer router.srv.Close()
	base := "http://" + router.addr
	ref, err := serveResize("127.0.0.1:0", aggsrv.New(nil).Handler())
	if err != nil {
		return st, err
	}
	defer ref.srv.Close()
	refBase := "http://" + ref.addr

	rw, err := newResizeWorker(o)
	if err != nil {
		return st, err
	}
	defer rw.eng.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	// The slots to re-home: the new replica's canonical share.
	var toMove []int
	for s := 0; s < qlove.Slots; s++ {
		if s%3 == 2 {
			toMove = append(toMove, s)
		}
	}
	moved := map[int]bool{}
	moveOne := func(slot int) error {
		resp, err := client.Post(fmt.Sprintf("%s/slots/move?slot=%d&to=2", base, slot), "", nil)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("move slot %d: %s: %s", slot, resp.Status, body)
		}
		moved[slot] = true
		return nil
	}

	// Interleave: one delta round, then a batch of slot moves, then a
	// query sweep — the chain keeps folding while the tier is resizing.
	st.MidIdentical = true
	batch := (len(toMove) + o.Rounds - 1) / o.Rounds
	next := 0
	for r := 0; r < o.Rounds; r++ {
		if err := rw.round(client, base, refBase); err != nil {
			return st, err
		}
		for i := 0; i < batch && next < len(toMove); i++ {
			if err := moveOne(toMove[next]); err != nil {
				return st, err
			}
			next++
		}
		same, err := querySweepIdentical(client, base, refBase, rw.keys)
		if err != nil {
			return st, err
		}
		st.MidIdentical = st.MidIdentical && same
	}
	for next < len(toMove) {
		if err := moveOne(toMove[next]); err != nil {
			return st, err
		}
		next++
	}
	st.SlotsMoved = len(moved)

	// Slot-level diff: every key lives exactly on its expected replica —
	// moved slots on the new replica, the rest untouched.
	st.MovedOnly = true
	for _, key := range rw.keys {
		s := qlove.SlotOf(key)
		owner := s % 2
		if moved[s] {
			owner = 2
		}
		for i := range reps {
			resp, err := client.Get(urls[i] + "/query?key=" + url.QueryEscape(key))
			if err != nil {
				return st, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if (resp.StatusCode == http.StatusOK) != (i == owner) {
				st.MovedOnly = false
			}
		}
	}

	// The router's table reflects every move.
	resp, err := client.Get(base + "/slots")
	if err != nil {
		return st, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var report aggsrv.SlotsReport
	if err := json.Unmarshal(body, &report); err != nil {
		return st, fmt.Errorf("/slots: %w: %s", err, body)
	}
	st.TableFlipped = true
	for s := 0; s < qlove.Slots; s++ {
		want := s % 2
		if moved[s] {
			want = 2
		}
		if report.Map.Primary(s) != want {
			st.TableFlipped = false
		}
	}

	// One more round after the migration (cursor continuity), then the
	// final identity gate.
	if err := rw.round(client, base, refBase); err != nil {
		return st, err
	}
	got, err := httpSnapshotBytes(client, base)
	if err != nil {
		return st, err
	}
	want, err := httpSnapshotBytes(client, refBase)
	if err != nil {
		return st, err
	}
	st.FinalIdentical = bytes.Equal(got, want)
	return st, nil
}

// resizeExperiment prints both phases as text, failing unless every
// verdict holds.
func resizeExperiment(w io.Writer, o resizeOptions) error {
	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	bitVerdict := func(ok bool) string {
		if ok {
			return "bit-identical"
		}
		return "MISMATCH"
	}
	fmt.Fprintf(w, "resize: quorum fan-out and live slot migration (seed %d)\n", o.Seed)
	fmt.Fprintf(w, "  quorum: 2 full-copy replicas (replication 2), replica 0 killed after round %d of %d\n",
		o.Rounds/2, o.Rounds)
	qst, err := resizeQuorum(o)
	if err != nil {
		return fmt.Errorf("quorum phase: %w", err)
	}
	fmt.Fprintf(w, "    mid-chain push with one owner down (quorum 1/2): %s\n", verdict(qst.PushOnQuorum))
	fmt.Fprintf(w, "    degraded queries fail over to the survivor: %s\n", bitVerdict(qst.DegradedServed))
	fmt.Fprintf(w, "    empty revival resynced from peer: %s (%v)\n",
		verdict(qst.Resynced), qst.ResyncLatency.Round(time.Millisecond))
	fmt.Fprintf(w, "    rebuilt replica /snapshot vs reference: %s\n", bitVerdict(qst.ReplicaIdentical))
	fmt.Fprintf(w, "    resumed chains, final view vs reference: %s\n", bitVerdict(qst.FinalIdentical))
	fmt.Fprintf(w, "  grow: slot table spanning 2 of 3 replicas, third grown in under load\n")
	gst, err := resizeGrow(o)
	if err != nil {
		return fmt.Errorf("grow phase: %w", err)
	}
	fmt.Fprintf(w, "    slots moved live: %d\n", gst.SlotsMoved)
	fmt.Fprintf(w, "    queries during migration vs reference: %s\n", bitVerdict(gst.MidIdentical))
	fmt.Fprintf(w, "    only the moved slots changed replica: %s\n", verdict(gst.MovedOnly))
	fmt.Fprintf(w, "    /slots table reflects every move: %s\n", verdict(gst.TableFlipped))
	fmt.Fprintf(w, "    post-migration chain, final view vs reference: %s\n", bitVerdict(gst.FinalIdentical))
	if !qst.PushOnQuorum || !qst.DegradedServed || !qst.Resynced || !qst.ReplicaIdentical || !qst.FinalIdentical {
		return fmt.Errorf("quorum phase did not behave as specified")
	}
	if !gst.MidIdentical || !gst.MovedOnly || !gst.TableFlipped || !gst.FinalIdentical {
		return fmt.Errorf("grow phase diverged during live migration")
	}
	return nil
}
