package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/workload"
)

// The multikey scenario measures the keyed Engine: the same keyed NetMon
// workload (Zipf-skewed keys, per-key reports) is ingested at each shard
// count, recording aggregate throughput, then the hottest key's snapshot
// is verified bit-for-bit against a single Monitor fed that key's
// sub-stream with identical report boundaries.

// multiKeyOptions parameterizes one scenario run.
type multiKeyOptions struct {
	Spec     qlove.Window
	Phis     []float64
	Keys     int
	Skew     float64
	Report   int   // values per keyed report
	Elements int   // total values ingested per shard configuration
	Shards   []int // shard counts to sweep
	Seed     int64
}

// defaultMultiKeyOptions scales the scenario: 100k keys and 20M elements
// at scale 1.
func defaultMultiKeyOptions(scale float64, seed int64, keys int, skew float64) multiKeyOptions {
	if keys <= 0 {
		keys = int(100_000 * scale)
		if keys < 500 {
			keys = 500
		}
	}
	elements := int(20_000_000 * scale)
	if min := 50 * keys; elements < min {
		// Enough traffic that hot keys evaluate many times and the key
		// universe is fully populated.
		elements = min
	}
	maxShards := runtime.GOMAXPROCS(0)
	if maxShards < 8 {
		maxShards = 8
	}
	shards := []int{1}
	for s := 2; s < maxShards; s *= 2 {
		shards = append(shards, s)
	}
	shards = append(shards, maxShards)
	return multiKeyOptions{
		Spec:     qlove.Window{Size: 512, Period: 128},
		Phis:     []float64{0.5, 0.9, 0.99},
		Keys:     keys,
		Skew:     skew,
		Report:   128,
		Elements: elements,
		Shards:   shards,
		Seed:     seed,
	}
}

// engineRun is one shard-count measurement, also emitted into the -json
// perf record.
type engineRun struct {
	Shards             int     `json:"shards"`
	Pushers            int     `json:"pushers"`
	Keys               int     `json:"keys"`
	KeysObserved       int     `json:"keys_observed"`
	Elements           int     `json:"elements"`
	ReportSize         int     `json:"report_size"`
	Skew               float64 `json:"skew"`
	ThroughputMevS     float64 `json:"throughput_mev_s"`
	Evaluations        uint64  `json:"evaluations"`
	DroppedResults     uint64  `json:"dropped_results"`
	ShardSkew          float64 `json:"shard_skew"`
	SnapshotConsistent bool    `json:"snapshot_consistent"`
}

// reportSeq is the scenario's deterministic report sequence, materialized
// BEFORE the clock starts so the throughput measurement times engine
// ingest, not serial workload generation (which would otherwise be the
// Amdahl bottleneck the shard sweep reports instead of scaling). The
// sequence is an enumeration pass where every key reports once (the
// heartbeat all series send — this is what makes "≥ keys concurrently
// monitored" literal, not probabilistic), followed by skew-distributed
// traffic reports. Ingest and verification both walk this exact sequence,
// so per-key sub-streams and their report boundaries match element for
// element.
type reportSeq struct {
	keys   []string  // one per report
	vals   []float64 // len(keys) × report values, report i at [i*report, (i+1)*report)
	report int
	hot    string // the Zipf head (key 0), the key verification replays
}

// materializeReports draws the whole sequence.
func materializeReports(o multiKeyOptions) (reportSeq, error) {
	gen, err := workload.NewKeyed(o.Seed, o.Keys, o.Skew, workload.NewNetMon(o.Seed))
	if err != nil {
		return reportSeq{}, err
	}
	reports := o.Elements / o.Report
	if reports < o.Keys {
		reports = o.Keys
	}
	seq := reportSeq{
		keys:   make([]string, reports),
		vals:   make([]float64, reports*o.Report),
		report: o.Report,
		hot:    gen.Key(0),
	}
	for i := 0; i < reports; i++ {
		// Three-index slice: Values/NextReport fill to cap(dst), which
		// must stop at this report's end, not the array's.
		vs := seq.vals[i*o.Report : i*o.Report : (i+1)*o.Report]
		if i < o.Keys {
			seq.keys[i] = gen.Key(i)
			gen.Values(vs)
		} else {
			key, _ := gen.NextReport(vs)
			seq.keys[i] = key
		}
	}
	return seq, nil
}

// each replays the sequence.
func (r reportSeq) each(fn func(key string, vs []float64) error) error {
	for i, key := range r.keys {
		if err := fn(key, r.vals[i*r.report:(i+1)*r.report]); err != nil {
			return err
		}
	}
	return nil
}

// elements is the total element count the sequence delivers.
func (r reportSeq) elements() int { return len(r.vals) }

// runEngineScenario ingests the workload at one shard count and verifies
// the hottest key's snapshot against a single-Monitor reference. The
// sequence is materialized once by the caller and shared read-only across
// shard counts (Push copies every batch; the replay never mutates it).
func runEngineScenario(o multiKeyOptions, seq reportSeq, shards int) (engineRun, error) {
	return runEngineScenarioPushers(o, seq, shards, 1)
}

// runEngineScenarioPushers is runEngineScenario with a concurrent source
// tier: the sequence is partitioned BY KEY across pushers (a key's reports
// stay with one pusher, in sequence order), so per-key sub-streams keep
// their boundaries and ordering and the bit-equivalence check remains
// exact while ingest runs from many goroutines.
func runEngineScenarioPushers(o multiKeyOptions, seq reportSeq, shards, pushers int) (engineRun, error) {
	cfg := qlove.Config{Spec: o.Spec, Phis: o.Phis}
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       cfg,
		Shards:       shards,
		QueueDepth:   256,
		ResultBuffer: 1 << 14,
	})
	if err != nil {
		return engineRun{}, err
	}
	if pushers < 1 {
		pushers = 1
	}
	var evals atomic.Uint64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Results() {
			evals.Add(1)
		}
	}()

	start := time.Now()
	if pushers == 1 {
		if err := seq.each(eng.Push); err != nil {
			return engineRun{}, err
		}
	} else if err := pushPartitioned(eng, seq, pushers); err != nil {
		return engineRun{}, err
	}
	keysObserved := eng.Keys()
	eng.Close() // waits for every shard to drain
	elapsed := time.Since(start)
	<-drained

	run := engineRun{
		Shards:         shards,
		Pushers:        pushers,
		Keys:           o.Keys,
		KeysObserved:   keysObserved,
		Elements:       seq.elements(),
		ReportSize:     o.Report,
		Skew:           o.Skew,
		ThroughputMevS: float64(seq.elements()) / elapsed.Seconds() / 1e6,
		Evaluations:    evals.Load(),
		DroppedResults: eng.Dropped(),
		ShardSkew:      eng.Stats().Skew(),
	}
	consistent, err := verifyHotKey(eng, seq, o)
	if err != nil {
		return engineRun{}, err
	}
	run.SnapshotConsistent = consistent
	return run, nil
}

// pushPartitioned replays the sequence through pushers goroutines, each
// owning a fixed set of keys (assigned round-robin in first-appearance
// order) and pushing its reports in sequence order.
func pushPartitioned(eng *qlove.Engine, seq reportSeq, pushers int) error {
	parts := make([][]int, pushers)
	owner := make(map[string]int, 1024)
	for i, key := range seq.keys {
		p, ok := owner[key]
		if !ok {
			p = len(owner) % pushers
			owner[key] = p
		}
		parts[p] = append(parts[p], i)
	}
	errs := make(chan error, pushers)
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				if err := eng.Push(seq.keys[i], seq.vals[i*seq.report:(i+1)*seq.report]); err != nil {
					errs <- err
					return
				}
			}
		}(part)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// verifyHotKey replays the hottest key's sub-stream (same report
// boundaries) through a single Monitor and compares the engine's snapshot
// estimates bit-for-bit.
func verifyHotKey(eng *qlove.Engine, seq reportSeq, o multiKeyOptions) (bool, error) {
	snap, ok := eng.Query(seq.hot)
	if !ok {
		return false, fmt.Errorf("hot key %q not monitored", seq.hot)
	}
	ref, err := newRefMonitor(qlove.Config{Spec: o.Spec, Phis: o.Phis}, o.Spec)
	if err != nil {
		return false, err
	}
	err = seq.each(func(key string, vs []float64) error {
		if key == seq.hot {
			ref.mon.PushBatch(vs, nil)
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	return bitsEqual(snap.Estimates(), ref.policy.Snapshot().Estimates()), nil
}

// multiKeyExperiment prints the shard sweep as a table.
func multiKeyExperiment(w io.Writer, o multiKeyOptions) error {
	fmt.Fprintf(w, "engine scaling: %d keys (zipf %.2f), %s windows, %d-value reports, %d elements/run, GOMAXPROCS=%d\n",
		o.Keys, o.Skew, o.Spec, o.Report, o.Elements, runtime.GOMAXPROCS(0))
	seq, err := materializeReports(o)
	if err != nil {
		return err
	}
	var base float64
	for _, shards := range o.Shards {
		run, err := runEngineScenario(o, seq, shards)
		if err != nil {
			return err
		}
		if shards == o.Shards[0] {
			base = run.ThroughputMevS
		}
		speedup := 0.0
		if base > 0 {
			speedup = run.ThroughputMevS / base
		}
		verdict := "bit-identical"
		if !run.SnapshotConsistent {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(w, "  shards=%-3d keys=%-7d throughput=%8.2f Mev/s  speedup=%.2fx  evals=%-8d dropped=%-6d hot-key snapshot: %s\n",
			run.Shards, run.KeysObserved, run.ThroughputMevS, speedup,
			run.Evaluations, run.DroppedResults, verdict)
		if !run.SnapshotConsistent {
			return fmt.Errorf("shards=%d: hot-key snapshot diverged from single-monitor reference", shards)
		}
	}
	return nil
}
