package main

// The resilience scenario exercises the aggregation tier's two failure
// paths end to end, with real processes and real sockets:
//
//   - Crash restart: a DISK-BACKED aggregation service child (this binary
//     re-exec'd, like the distributed workers) takes delta-chain pushes
//     from live worker engines, is SIGKILLed mid-chain, and restarts on
//     the same state directory. The recovered /snapshot must be
//     bit-identical to the pre-crash one, and — because the store
//     persists each worker's export cursor — the workers' NEXT deltas
//     must fold without re-bootstrapping, landing the restarted service
//     bit-identical to an uninterrupted reference service fed the same
//     blobs.
//   - Degraded fan-in: two replica servers behind the HTTP fan-in
//     router; one replica dies mid-serve. The router must keep answering
//     the live partition, report the dead replica in /healthz and the
//     /snapshot degraded list, fail pushes loudly (naming the dead
//     replica), and — once the replica comes back on the same address —
//     reinstate it via the background probe without a restart.
//
// Both phases are verification gates, not throughput measurements: the
// printed latencies (restart-to-healthy, probe reinstatement) are
// informational, the bit-identity and availability verdicts are what
// fail the run.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"time"

	"repro"
	"repro/internal/aggsrv"
)

// aggServeCmd is the hidden argv[1] the parent uses to re-exec itself as
// the aggregation-service child of the restart phase (the same trick as
// workerCmd for the distributed workers).
const aggServeCmd = "__agg-server"

// aggServeChild is the re-exec'd service process: an aggsrv server over a
// disk-backed (or map, for the uninterrupted reference) aggregator,
// announcing its base URL on stdout and serving until killed.
func aggServeChild(args []string) error {
	fs := flag.NewFlagSet(aggServeCmd, flag.ContinueOnError)
	store := fs.String("store", "disk", "aggregator store backend (map | disk)")
	dir := fs.String("dir", "", "disk store state directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	agg, err := qlove.NewAggregatorConfig(qlove.AggregatorConfig{Store: *store, Dir: *dir})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// The parent parses this line; stdout is otherwise unused.
	fmt.Printf("AGG http://%s\n", ln.Addr().String())
	return http.Serve(ln, aggsrv.New(agg).Handler())
}

// resilienceOptions parameterizes the scenario. The workload is tiny on
// purpose — the phases gate on identity and availability, not throughput.
type resilienceOptions struct {
	Seed    int64
	Workers int // worker engines pushing delta chains (restart phase)
	Rounds  int // delta pushes per worker; the crash lands mid-chain
	Keys    int // logical keys, partitioned across the workers
}

func defaultResilienceOptions(seed int64) resilienceOptions {
	return resilienceOptions{Seed: seed, Workers: 2, Rounds: 6, Keys: 8}
}

// aggChild is one re-exec'd service process and its announced base URL.
type aggChild struct {
	cmd  *exec.Cmd
	base string
}

// startAggChild re-execs this binary as an aggregation-service child and
// waits for it to announce its address and answer /healthz.
func startAggChild(store, dir string) (*aggChild, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	args := []string{aggServeCmd, "-store", store}
	if dir != "" {
		args = append(args, "-dir", dir)
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("agg child exited before announcing its address")
	}
	var base string
	if _, err := fmt.Sscanf(sc.Text(), "AGG %s", &base); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("agg child announced %q: %w", sc.Text(), err)
	}
	if err := waitHealthy(base, 10*time.Second); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	}
	return &aggChild{cmd: cmd, base: base}, nil
}

// kill SIGKILLs the child — no shutdown hooks, no final fsync beyond what
// the store already did per write. This is the crash the disk store's
// recovery path exists for.
func (c *aggChild) kill() {
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
	c.cmd.Wait()
}

// resilienceRestartStats is the restart phase's half of the report.
type resilienceRestartStats struct {
	Workers            int           `json:"workers"`
	Rounds             int           `json:"rounds"`
	CrashAfter         int           `json:"crash_after_round"`
	RecoveredIdentical bool          `json:"recovered_identical"`
	ResumedIdentical   bool          `json:"resumed_identical"`
	RestartToHealthy   time.Duration `json:"-"`
}

// resilienceWorker is one live worker engine pushing a delta chain: a
// single export cursor per worker, because the SAME delta blob goes to
// both the victim and the reference service.
type resilienceWorker struct {
	id     string
	eng    *qlove.Engine
	cursor qlove.ExportCursor
	rnd    *rand.Rand
	keys   []string
}

func httpPushBlob(client *http.Client, base, worker string, blob []byte) error {
	resp, err := client.Post(base+"/push?worker="+url.QueryEscape(worker),
		"application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("push %s: %w", worker, err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("push %s: %s: %s", worker, resp.Status, msg)
	}
	return nil
}

func httpSnapshotBytes(client *http.Client, base string) ([]byte, error) {
	resp, err := client.Get(base + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot: %s: %s", resp.Status, body)
	}
	return body, nil
}

// resilienceRestart runs the crash-restart phase: delta chains into a
// disk-backed child and an uninterrupted reference child, SIGKILL the
// victim mid-chain, restart it on the same directory, verify the
// recovered snapshot bit-identically matches the pre-crash one, then
// finish the chains on both and require the final views identical.
func resilienceRestart(o resilienceOptions) (resilienceRestartStats, error) {
	st := resilienceRestartStats{Workers: o.Workers, Rounds: o.Rounds, CrashAfter: o.Rounds / 2}
	dir, err := os.MkdirTemp("", "qlove-resilience-*")
	if err != nil {
		return st, err
	}
	defer os.RemoveAll(dir)

	victim, err := startAggChild("disk", dir)
	if err != nil {
		return st, fmt.Errorf("victim: %w", err)
	}
	defer victim.kill()
	ref, err := startAggChild("map", "")
	if err != nil {
		return st, fmt.Errorf("reference: %w", err)
	}
	defer ref.kill()

	workers := make([]*resilienceWorker, o.Workers)
	for w := range workers {
		eng, err := qlove.NewEngine(qlove.EngineConfig{
			Config:       qlove.Config{Spec: qlove.Window{Size: 512, Period: 128}, Phis: []float64{0.5, 0.9, 0.99}},
			Shards:       2,
			ResultBuffer: 1 << 14,
		})
		if err != nil {
			return st, err
		}
		go func() {
			for range eng.Results() {
			}
		}()
		rw := &resilienceWorker{
			id:  fmt.Sprintf("worker-%03d", w),
			eng: eng,
			rnd: rand.New(rand.NewSource(o.Seed + int64(w)*7919)),
		}
		for k := w; k < o.Keys; k += o.Workers {
			rw.keys = append(rw.keys, fmt.Sprintf("key-%03d", k))
		}
		workers[w] = rw
		defer eng.Close()
	}

	client := &http.Client{Timeout: 30 * time.Second}
	// One round: every worker ingests a report per key, exports ONE delta
	// blob, and pushes the same bytes to every destination — so the two
	// services and the workers' cursors stay in lockstep.
	round := func(targets ...string) error {
		for _, rw := range workers {
			for _, key := range rw.keys {
				vs := make([]float64, 128)
				for i := range vs {
					vs[i] = rw.rnd.Float64() * 1000
				}
				if err := rw.eng.Push(key, vs); err != nil {
					return err
				}
			}
			var buf bytes.Buffer
			if _, err := rw.eng.ExportDelta(&buf, &rw.cursor); err != nil {
				return err
			}
			for _, base := range targets {
				if err := httpPushBlob(client, base, rw.id, buf.Bytes()); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for r := 0; r < st.CrashAfter; r++ {
		if err := round(victim.base, ref.base); err != nil {
			return st, err
		}
	}
	preCrash, err := httpSnapshotBytes(client, victim.base)
	if err != nil {
		return st, err
	}

	victim.kill()
	restart := time.Now()
	revived, err := startAggChild("disk", dir)
	if err != nil {
		return st, fmt.Errorf("restart: %w", err)
	}
	defer revived.kill()
	st.RestartToHealthy = time.Since(restart)

	recovered, err := httpSnapshotBytes(client, revived.base)
	if err != nil {
		return st, err
	}
	st.RecoveredIdentical = bytes.Equal(recovered, preCrash)

	// Resume the delta chains where they left off: the recovered cursors
	// must accept these without forcing a re-bootstrap, or the final views
	// diverge (a re-bootstrapping service would ALSO converge, but only
	// after the workers' next FULL export — these pushes are deltas only).
	for r := st.CrashAfter; r < o.Rounds; r++ {
		if err := round(revived.base, ref.base); err != nil {
			return st, err
		}
	}
	final, err := httpSnapshotBytes(client, revived.base)
	if err != nil {
		return st, err
	}
	want, err := httpSnapshotBytes(client, ref.base)
	if err != nil {
		return st, err
	}
	st.ResumedIdentical = bytes.Equal(final, want)
	return st, nil
}

// resilienceFaninStats is the degraded fan-in phase's half of the report.
type resilienceFaninStats struct {
	LiveKeyServed    bool          `json:"live_key_served"`
	DeadKeyRejected  bool          `json:"dead_key_rejected"`
	HealthzDegraded  bool          `json:"healthz_degraded"`
	SnapshotDegraded bool          `json:"snapshot_degraded"`
	PushNamedDead    bool          `json:"push_named_dead"`
	Reinstated       bool          `json:"reinstated"`
	RestoredByRepush bool          `json:"restored_by_repush"`
	ReinstateLatency time.Duration `json:"-"`
}

// resilienceFanin runs the degraded-replica phase in-process (the router
// and replicas are in this process; the sockets are real): kill one of
// two replicas, verify partial serving + loud degradation, revive it on
// the SAME address, and wait for the probe loop to reinstate it.
func resilienceFanin(o resilienceOptions) (resilienceFaninStats, error) {
	var st resilienceFaninStats
	type replica struct {
		addr string
		srv  *http.Server
	}
	serve := func(addr string, h http.Handler) (replica, error) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return replica{}, err
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		return replica{addr: ln.Addr().String(), srv: srv}, nil
	}
	reps := make([]replica, 2)
	for i := range reps {
		r, err := serve("127.0.0.1:0", aggsrv.New(nil).Handler())
		if err != nil {
			return st, err
		}
		reps[i] = r
		defer r.srv.Close()
	}
	fanin, err := aggsrv.NewFaninConfig(aggsrv.FaninConfig{
		Replicas:      []string{"http://" + reps[0].addr, "http://" + reps[1].addr},
		Timeout:       2 * time.Second,
		Retries:       1,
		RetryBackoff:  time.Millisecond,
		FailThreshold: 2,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return st, err
	}
	defer fanin.Close()
	router, err := serve("127.0.0.1:0", fanin.Handler())
	if err != nil {
		return st, err
	}
	defer router.srv.Close()
	base := "http://" + router.addr

	// One worker blob with keys on BOTH partitions, pushed through the
	// router so each replica owns its share.
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       qlove.Config{Spec: qlove.Window{Size: 512, Period: 128}, Phis: []float64{0.5, 0.9, 0.99}},
		Shards:       2,
		ResultBuffer: 1 << 14,
	})
	if err != nil {
		return st, err
	}
	go func() {
		for range eng.Results() {
		}
	}()
	defer eng.Close()
	var deadKey, liveKey string
	rnd := rand.New(rand.NewSource(o.Seed))
	for k := 0; deadKey == "" || liveKey == ""; k++ {
		key := fmt.Sprintf("key-%03d", k)
		switch qlove.PartitionOf(key, 2) {
		case 0:
			deadKey = key // replica 0 is the one we kill
		case 1:
			liveKey = key
		}
		vs := make([]float64, 128)
		for i := range vs {
			vs[i] = rnd.Float64() * 1000
		}
		if err := eng.Push(key, vs); err != nil {
			return st, err
		}
	}
	var blob bytes.Buffer
	if _, err := eng.Export(&blob); err != nil {
		return st, err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	if err := httpPushBlob(client, base, "worker-000", blob.Bytes()); err != nil {
		return st, err
	}
	get := func(path string) (int, []byte, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}
	for _, key := range []string{deadKey, liveKey} {
		if status, body, err := get("/query?key=" + url.QueryEscape(key)); err != nil || status != http.StatusOK {
			return st, fmt.Errorf("healthy query %q: status %d err %v body %s", key, status, err, body)
		}
	}

	// Kill replica 0 (Close tears the listener down; the ADDRESS stays
	// ours to re-bind for the revival below).
	reps[0].srv.Close()

	status, _, err := get("/query?key=" + url.QueryEscape(liveKey))
	if err != nil {
		return st, err
	}
	st.LiveKeyServed = status == http.StatusOK
	status, _, err = get("/query?key=" + url.QueryEscape(deadKey))
	if err != nil {
		return st, err
	}
	st.DeadKeyRejected = status == http.StatusBadGateway

	// /healthz probes every replica each call, so polling it both drives
	// the consecutive-failure ejection and observes it.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !st.HealthzDegraded {
		_, body, err := get("/healthz")
		if err != nil {
			return st, err
		}
		var h aggsrv.FaninHealth
		if err := json.Unmarshal(body, &h); err != nil {
			return st, fmt.Errorf("healthz: %w: %s", err, body)
		}
		st.HealthzDegraded = h.Status == "degraded" && len(h.Replicas) == 2 && h.Replicas[0].Status == "down"
		time.Sleep(10 * time.Millisecond)
	}

	status, body, err := get("/snapshot")
	if err != nil {
		return st, err
	}
	if status == http.StatusOK {
		var snap struct {
			Keys     []json.RawMessage `json:"keys"`
			Degraded []string          `json:"degraded"`
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			return st, fmt.Errorf("snapshot: %w", err)
		}
		st.SnapshotDegraded = len(snap.Keys) >= 1 && len(snap.Degraded) == 1 &&
			snap.Degraded[0] == "http://"+reps[0].addr
	}

	resp, err := client.Post(base+"/push?worker=worker-000", "application/octet-stream",
		bytes.NewReader(blob.Bytes()))
	if err != nil {
		return st, err
	}
	pushBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusBadGateway {
		var pe aggsrv.FaninPushError
		if err := json.Unmarshal(pushBody, &pe); err == nil {
			st.PushNamedDead = len(pe.Failed) == 1 && pe.Failed[0] == "http://"+reps[0].addr
		}
	}

	// Revive replica 0 on the SAME address (fresh and empty — exactly a
	// replaced replica host) and wait for the probe loop to notice.
	revived, err := serve(reps[0].addr, aggsrv.New(nil).Handler())
	if err != nil {
		return st, fmt.Errorf("revive replica 0: %w", err)
	}
	defer revived.srv.Close()
	reinstate := time.Now()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !st.Reinstated {
		_, body, err := get("/healthz")
		if err != nil {
			return st, err
		}
		var h aggsrv.FaninHealth
		if json.Unmarshal(body, &h) == nil && h.Status == "ok" {
			st.Reinstated = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	st.ReinstateLatency = time.Since(reinstate)

	// The revived replica is empty; a worker re-push (the bootstrap path
	// workers fall back to whenever a replica loses their state) restores
	// its partition through the now-healthy router.
	if st.Reinstated {
		if err := httpPushBlob(client, base, "worker-000", blob.Bytes()); err != nil {
			return st, err
		}
		status, _, err := get("/query?key=" + url.QueryEscape(deadKey))
		if err != nil {
			return st, err
		}
		st.RestoredByRepush = status == http.StatusOK
	}
	return st, nil
}

// resilienceExperiment prints both phases as text, failing unless every
// verdict holds.
func resilienceExperiment(w io.Writer, o resilienceOptions) error {
	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	bitVerdict := func(ok bool) string {
		if ok {
			return "bit-identical"
		}
		return "MISMATCH"
	}
	fmt.Fprintf(w, "resilience: crash-restart durability and degraded fan-in (seed %d)\n", o.Seed)
	fmt.Fprintf(w, "  restart: %d workers x %d delta rounds into a disk-backed service child, SIGKILL after round %d\n",
		o.Workers, o.Rounds, o.Rounds/2)
	rst, err := resilienceRestart(o)
	if err != nil {
		return fmt.Errorf("restart phase: %w", err)
	}
	fmt.Fprintf(w, "    recovered /snapshot vs pre-crash: %s\n", bitVerdict(rst.RecoveredIdentical))
	fmt.Fprintf(w, "    resumed delta chains vs uninterrupted reference: %s\n", bitVerdict(rst.ResumedIdentical))
	fmt.Fprintf(w, "    restart-to-healthy: %v\n", rst.RestartToHealthy.Round(time.Millisecond))
	fmt.Fprintf(w, "  fanin: 2 replicas behind the router, replica 0 killed mid-serve\n")
	fst, err := resilienceFanin(o)
	if err != nil {
		return fmt.Errorf("fanin phase: %w", err)
	}
	fmt.Fprintf(w, "    live-partition query while degraded: %s\n", verdict(fst.LiveKeyServed))
	fmt.Fprintf(w, "    dead-partition query rejected (502): %s\n", verdict(fst.DeadKeyRejected))
	fmt.Fprintf(w, "    /healthz degraded, replica 0 down: %s\n", verdict(fst.HealthzDegraded))
	fmt.Fprintf(w, "    /snapshot served with degraded list: %s\n", verdict(fst.SnapshotDegraded))
	fmt.Fprintf(w, "    push 502 naming the dead replica: %s\n", verdict(fst.PushNamedDead))
	fmt.Fprintf(w, "    probe reinstatement after same-address revival: %s (%v)\n",
		verdict(fst.Reinstated), fst.ReinstateLatency.Round(time.Millisecond))
	fmt.Fprintf(w, "    partition restored by worker re-push: %s\n", verdict(fst.RestoredByRepush))
	if !rst.RecoveredIdentical || !rst.ResumedIdentical {
		return fmt.Errorf("crash restart diverged from reference")
	}
	if !fst.LiveKeyServed || !fst.DeadKeyRejected || !fst.HealthzDegraded ||
		!fst.SnapshotDegraded || !fst.PushNamedDead || !fst.Reinstated || !fst.RestoredByRepush {
		return fmt.Errorf("degraded fan-in did not behave as specified")
	}
	return nil
}
