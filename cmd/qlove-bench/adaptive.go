package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro"
	"repro/internal/loadgen"
	"repro/internal/workload"
)

// The adaptive storm is the storm scenario with the routing decision taken
// away from the operator: no RouteSalt, a hot key that MOVES mid-run (a
// loadgen.HotSchedule), and an engine whose occupancy controller must
// discover each head, escalate it, cool the abandoned one, and keep shard
// skew near the statically-salted baseline. Verification is three-fold,
// all bit-level: the full export must be byte-identical to an unmigrated,
// unsalted reference engine fed the same sequence; every escalated key
// must match reference monitors driven by a replay of the controller's
// route events; and the delta-export stream folded through an aggregator
// must answer exactly like the final full export.

// adaptiveStormRun is one adaptive measurement, also emitted in -json.
type adaptiveStormRun struct {
	Shards            int                 `json:"shards"`
	CadenceReports    int                 `json:"cadence_reports"`
	Schedule          loadgen.HotSchedule `json:"schedule"`
	ThroughputMevS    float64             `json:"throughput_mev_s"`
	ShardSkew         float64             `json:"shard_skew"`
	FinalIntervalSkew float64             `json:"final_interval_skew"`
	QueueHighWater    int                 `json:"queue_high_water"`
	Escalations       int                 `json:"escalations"`
	Deescalations     int                 `json:"deescalations"`
	Collapses         int                 `json:"collapses"`
	Migrations        int                 `json:"migrations"`
	SkewSeries        []skewPoint         `json:"skew_series"`
	Events            []routeEventRecord  `json:"events"`
	ExportConsistent  bool                `json:"export_consistent"`
	HotKeysConsistent bool                `json:"hot_keys_consistent"`
	FoldConsistent    bool                `json:"fold_consistent"`
}

// skewPoint is one controller pass in the skew-over-time series.
type skewPoint struct {
	Report       int     `json:"report"`
	Deliveries   uint64  `json:"deliveries"`
	Skew         float64 `json:"skew"`
	IntervalSkew float64 `json:"interval_skew"`
	Escalated    int     `json:"escalated"`
	Pinned       int     `json:"pinned"`
	Events       int     `json:"events"`
}

// routeEventRecord is a JSON-friendly route event stamped with the report
// index of the pass that produced it.
type routeEventRecord struct {
	Report    int    `json:"report"`
	Kind      string `json:"kind"`
	Key       string `json:"key"`
	Salt      int    `json:"salt,omitempty"`
	FromShard int    `json:"from_shard"`
	ToShard   int    `json:"to_shard"`
}

// materializeAdaptiveStorm draws the moving-head storm: the enumeration
// pass, then traffic where each report lands on the SCHEDULED hot key with
// probability HotFrac and otherwise follows the Zipf draw. Progress for
// the schedule is measured over the traffic portion (the enumeration pass
// is a fixed prologue, not part of the storm).
func materializeAdaptiveStorm(o stormOptions, sched loadgen.HotSchedule) (reportSeq, []string, error) {
	if err := sched.Validate(); err != nil {
		return reportSeq{}, nil, err
	}
	gen, err := workload.NewKeyed(o.Seed, o.Keys, o.Skew, workload.NewNetMon(o.Seed))
	if err != nil {
		return reportSeq{}, nil, err
	}
	reports := o.Elements / o.Report
	if reports < o.Keys {
		reports = o.Keys
	}
	seq := reportSeq{
		keys:   make([]string, reports),
		vals:   make([]float64, reports*o.Report),
		report: o.Report,
		hot:    gen.Key(sched[0].Key % o.Keys),
	}
	heads := make([]string, 0, len(sched))
	seen := map[string]bool{}
	for _, p := range sched {
		h := gen.Key(p.Key % o.Keys)
		if !seen[h] {
			seen[h], heads = true, append(heads, h)
		}
	}
	traffic := reports - o.Keys
	if traffic < 1 {
		traffic = 1
	}
	rng := rand.New(rand.NewSource(o.Seed ^ 0x5707))
	for i := 0; i < reports; i++ {
		vs := seq.vals[i*o.Report : i*o.Report : (i+1)*o.Report]
		switch {
		case i < o.Keys:
			seq.keys[i] = gen.Key(i)
			gen.Values(vs)
		case rng.Float64() < o.HotFrac:
			frac := float64(i-o.Keys) / float64(traffic)
			seq.keys[i] = gen.Key(sched.KeyAt(frac) % o.Keys)
			gen.Values(vs)
		default:
			key, _ := gen.NextReport(vs)
			seq.keys[i] = key
		}
	}
	return seq, heads, nil
}

// replayRoute mirrors one key's routeOverride in the replay: the fan, the
// widest fan ever used, and the private push counter.
type replayRoute struct {
	salt, maxSalt, ctr int
}

// adaptiveReplay reconstructs the engine's per-key routing outside the
// engine: reference monitors per internal stream, driven by the same
// pushes and the controller's route events. Under serial replay the
// assignment is fully deterministic — push i after an escalation flip goes
// to sub-stream i mod salt — so every escalated key's merged snapshot must
// match the engine bit-for-bit.
type adaptiveReplay struct {
	cfg    qlove.Config
	spec   qlove.Window
	mons   map[string]*refMonitor
	routes map[string]*replayRoute
}

func newAdaptiveReplay(cfg qlove.Config, spec qlove.Window) *adaptiveReplay {
	return &adaptiveReplay{
		cfg: cfg, spec: spec,
		mons:   map[string]*refMonitor{},
		routes: map[string]*replayRoute{},
	}
}

// subName is the replay's private sub-stream naming; it only has to be
// collision-free and ordered, not identical to the engine's.
func subName(key string, j int) string { return fmt.Sprintf("%s\x00%03d", key, j) }

func (r *adaptiveReplay) push(key string, vs []float64) error {
	name := key
	if st := r.routes[key]; st != nil && st.salt >= 1 {
		j := 0
		if st.salt > 1 {
			j = st.ctr % st.salt
			st.ctr++
		}
		name = subName(key, j)
	}
	mon := r.mons[name]
	if mon == nil {
		var err error
		if mon, err = newRefMonitor(r.cfg, r.spec); err != nil {
			return err
		}
		r.mons[name] = mon
	}
	mon.mon.PushBatch(vs, nil)
	return nil
}

// apply folds one route event into the replay's routing state, exactly
// mirroring the engine's transitions.
func (r *adaptiveReplay) apply(ev qlove.RouteEvent) {
	switch ev.Kind {
	case qlove.RouteEscalate:
		st := r.routes[ev.Key]
		if st == nil {
			// Fresh escalation: the base operator migrated to sub-stream 0.
			if m := r.mons[ev.Key]; m != nil {
				r.mons[subName(ev.Key, 0)] = m
				delete(r.mons, ev.Key)
			}
			st = &replayRoute{}
			r.routes[ev.Key] = st
		}
		st.salt, st.ctr = ev.Salt, 0
		if ev.Salt > st.maxSalt {
			st.maxSalt = ev.Salt
		}
	case qlove.RouteDeescalate:
		if st := r.routes[ev.Key]; st != nil {
			st.salt = 1
		}
	case qlove.RouteCollapse:
		if m := r.mons[subName(ev.Key, 0)]; m != nil {
			r.mons[ev.Key] = m
			delete(r.mons, subName(ev.Key, 0))
		}
		delete(r.routes, ev.Key)
	case qlove.RouteMigrate:
		// Shard placement does not change stream content.
	}
}

// query folds a key's streams in the engine's order — base residue first,
// then sub-streams ascending — and returns the merged snapshot.
func (r *adaptiveReplay) query(key string) (qlove.Snapshot, bool, error) {
	names := []string{key}
	if st := r.routes[key]; st != nil {
		for j := 0; j < st.maxSalt; j++ {
			names = append(names, subName(key, j))
		}
	}
	var snaps []qlove.Snapshot
	for _, n := range names {
		if m := r.mons[n]; m != nil {
			snaps = append(snaps, m.policy.Snapshot())
		}
	}
	if len(snaps) == 0 {
		return qlove.Snapshot{}, false, nil
	}
	merged, err := qlove.MergeSnapshots(snaps)
	return merged, true, err
}

// runStaticReference ingests the sequence into a plain engine — no salt,
// no adaptation — and returns its cumulative skew and full-export bytes:
// the bit-level ground truth the adaptive run must reproduce.
func runStaticReference(o stormOptions, seq reportSeq, shards int) (float64, []byte, error) {
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       qlove.Config{Spec: o.Spec, Phis: o.Phis},
		Shards:       shards,
		QueueDepth:   256,
		ResultBuffer: 1 << 14,
	})
	if err != nil {
		return 0, nil, err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Results() {
		}
	}()
	if err := seq.each(eng.Push); err != nil {
		return 0, nil, err
	}
	eng.Keys() // barrier: every delivery lands before the export scan
	var blob bytes.Buffer
	if _, err := eng.Export(&blob); err != nil {
		return 0, nil, err
	}
	eng.Close()
	<-drained
	return eng.Stats().Skew(), blob.Bytes(), nil
}

// runAdaptiveStorm ingests the moving-head sequence serially through an
// adaptive engine, driving the controller at a fixed report cadence
// (ingest quiesces at a Keys barrier before each pass, keeping the replay
// deterministic), and verifies the run bit-for-bit against the static
// reference export, the route-event replay, and the delta-export fold.
func runAdaptiveStorm(o stormOptions, seq reportSeq, sched loadgen.HotSchedule, heads []string, shards int, refBlob []byte) (adaptiveStormRun, error) {
	cfg := qlove.Config{Spec: o.Spec, Phis: o.Phis}
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       cfg,
		Shards:       shards,
		QueueDepth:   256,
		ResultBuffer: 1 << 14,
		Adapt:        &qlove.AdaptConfig{Salt: o.Salt, MinBatches: 32},
	})
	if err != nil {
		return adaptiveStormRun{}, err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Results() {
		}
	}()
	cadence := len(seq.keys) / 32
	if cadence < 64 {
		cadence = 64
	}
	replay := newAdaptiveReplay(cfg, o.Spec)
	agg := qlove.NewAggregator()
	cur := new(qlove.ExportCursor)
	run := adaptiveStormRun{Shards: shards, CadenceReports: cadence, Schedule: sched}
	escalated := map[string]bool{}
	pass := func(report int) error {
		eng.Keys() // barrier: deliveries visible to the stats sample
		for _, ev := range eng.Rebalance() {
			replay.apply(ev)
			run.Events = append(run.Events, routeEventRecord{
				Report: report, Kind: ev.Kind.String(), Key: ev.Key,
				Salt: ev.Salt, FromShard: ev.FromShard, ToShard: ev.ToShard,
			})
			switch ev.Kind {
			case qlove.RouteEscalate:
				run.Escalations++
				escalated[ev.Key] = true
			case qlove.RouteDeescalate:
				run.Deescalations++
			case qlove.RouteCollapse:
				run.Collapses++
			case qlove.RouteMigrate:
				run.Migrations++
			}
		}
		var delta bytes.Buffer
		if _, err := eng.ExportDelta(&delta, cur); err != nil {
			return err
		}
		_, err := agg.Apply("bench", bytes.NewReader(delta.Bytes()))
		return err
	}
	start := time.Now()
	for i, key := range seq.keys {
		vs := seq.vals[i*seq.report : (i+1)*seq.report]
		if err := eng.Push(key, vs); err != nil {
			return adaptiveStormRun{}, err
		}
		if err := replay.push(key, vs); err != nil {
			return adaptiveStormRun{}, err
		}
		if (i+1)%cadence == 0 {
			if err := pass(i + 1); err != nil {
				return adaptiveStormRun{}, err
			}
		}
	}
	if len(seq.keys)%cadence != 0 {
		// Final partial interval: one last pass so the series covers the
		// whole run (an aligned run already passed on its last report).
		if err := pass(len(seq.keys)); err != nil {
			return adaptiveStormRun{}, err
		}
	}
	elapsed := time.Since(start)

	// Verification 1: the full export matches the static reference — same
	// logical keys, and bit-identical estimates for every key that was
	// never escalated (migration must be invisible). Escalated keys are
	// genuinely split into sub-streams, so their folded snapshot is a
	// merge; the route-event replay below is their ground truth.
	var blob bytes.Buffer
	if _, err := eng.Export(&blob); err != nil {
		return adaptiveStormRun{}, err
	}
	run.ExportConsistent, err = exportMatchesReference(blob.Bytes(), refBlob, escalated)
	if err != nil {
		return adaptiveStormRun{}, err
	}

	// Verification 2: every escalated key (and every scheduled head)
	// matches the route-event replay bit-for-bit.
	run.HotKeysConsistent = true
	checks := append([]string(nil), heads...)
	for k := range escalated {
		checks = append(checks, k)
	}
	for _, key := range checks {
		got, ok := eng.Query(key)
		want, refOK, err := replay.query(key)
		if err != nil {
			return adaptiveStormRun{}, err
		}
		if ok != refOK || (ok && !bitsEqual(got.Estimates(), want.Estimates())) {
			run.HotKeysConsistent = false
		}
	}

	// Verification 3: the aggregated delta stream answers exactly like the
	// full export, logical key by logical key.
	var final EngineSnapshot
	run.FoldConsistent, err = foldMatchesExport(blob.Bytes(), agg, &final)
	if err != nil {
		return adaptiveStormRun{}, err
	}

	eng.Close()
	<-drained
	st := eng.Stats()
	run.ThroughputMevS = float64(seq.elements()) / elapsed.Seconds() / 1e6
	run.ShardSkew = st.Skew()
	run.QueueHighWater = st.Total().QueueHighWater
	for i, s := range eng.AdaptSamples() {
		report := (i + 1) * cadence
		if report > len(seq.keys) {
			report = len(seq.keys)
		}
		run.SkewSeries = append(run.SkewSeries, skewPoint{
			Report: report, Deliveries: s.Deliveries, Skew: s.Skew,
			IntervalSkew: s.IntervalSkew, Escalated: s.Escalated,
			Pinned: s.Pinned, Events: s.Events,
		})
		run.FinalIntervalSkew = s.IntervalSkew
	}
	return run, nil
}

// EngineSnapshot aliases the library type for the fold comparison.
type EngineSnapshot = qlove.EngineSnapshot

// exportMatchesReference parses both full-export blobs and compares them
// logical key by logical key: identical key sets, and bit-identical
// estimates for every key outside the escalated set (whose split streams
// are verified against the route-event replay instead).
func exportMatchesReference(got, want []byte, escalated map[string]bool) (bool, error) {
	var g, w EngineSnapshot
	if _, err := g.ReadFrom(bytes.NewReader(got)); err != nil {
		return false, err
	}
	if _, err := w.ReadFrom(bytes.NewReader(want)); err != nil {
		return false, err
	}
	gk, wk := g.Keys(), w.Keys()
	if len(gk) != len(wk) {
		return false, nil
	}
	for i := range gk {
		if gk[i] != wk[i] {
			return false, nil
		}
	}
	for _, k := range gk {
		if escalated[k] {
			continue
		}
		ge, _ := g.Query(k)
		we, _ := w.Query(k)
		if !bitsEqual(ge, we) {
			return false, nil
		}
	}
	return true, nil
}

// foldMatchesExport parses the engine's full-export blob and compares the
// aggregator's folded state against it: same logical keys, bit-identical
// estimates.
func foldMatchesExport(blob []byte, agg *qlove.Aggregator, out *EngineSnapshot) (bool, error) {
	if _, err := out.ReadFrom(bytes.NewReader(blob)); err != nil {
		return false, err
	}
	folded, err := agg.Snapshot()
	if err != nil {
		return false, err
	}
	fullKeys, foldKeys := out.Keys(), folded.Keys()
	if len(fullKeys) != len(foldKeys) {
		return false, nil
	}
	for i := range fullKeys {
		if fullKeys[i] != foldKeys[i] {
			return false, nil
		}
	}
	for _, k := range fullKeys {
		want, _ := out.Query(k)
		got, ok := folded.Query(k)
		if !ok || !bitsEqual(got, want) {
			return false, nil
		}
	}
	return true, nil
}

// adaptiveStormExperiment runs the moving-head storm three ways — static
// unsalted reference, then the adaptive engine — prints the adaptation
// trace, and enforces the scenario's promises: at least one escalation,
// all three bit-level verifications, and end-of-run shard skew at or
// below the target with RouteSalt unset.
func adaptiveStormExperiment(w io.Writer, o stormOptions) error {
	shards := o.Shards[len(o.Shards)-1]
	sched := loadgen.HotSchedule{{Until: 0.5, Key: 0}, {Until: 1, Key: 1}}
	fmt.Fprintf(w, "adaptive hot-key storm: %d keys (zipf %.2f), %.0f%% of traffic on a MOVING head %v, %d shards, adapt salt %d, GOMAXPROCS=%d\n",
		o.Keys, o.Skew, o.HotFrac*100, sched, shards, o.Salt, runtime.GOMAXPROCS(0))
	seq, heads, err := materializeAdaptiveStorm(o, sched)
	if err != nil {
		return err
	}
	refSkew, refBlob, err := runStaticReference(o, seq, shards)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  static unsalted reference: shard-skew=%.2f\n", refSkew)
	run, err := runAdaptiveStorm(o, seq, sched, heads, shards, refBlob)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  adaptive: throughput=%8.2f Mev/s  shard-skew=%.2f  final-interval-skew=%.2f  queue-high-water=%d\n",
		run.ThroughputMevS, run.ShardSkew, run.FinalIntervalSkew, run.QueueHighWater)
	fmt.Fprintf(w, "  controller: %d escalations, %d de-escalations, %d collapses, %d migrations over %d passes (cadence %d reports)\n",
		run.Escalations, run.Deescalations, run.Collapses, run.Migrations, len(run.SkewSeries), run.CadenceReports)
	for _, p := range run.SkewSeries {
		fmt.Fprintf(w, "    report %-7d interval-skew=%.2f cumulative=%.2f escalated=%d pinned=%d events=%d\n",
			p.Report, p.IntervalSkew, p.Skew, p.Escalated, p.Pinned, p.Events)
	}
	verdict := func(ok bool) string {
		if ok {
			return "bit-identical"
		}
		return "MISMATCH"
	}
	fmt.Fprintf(w, "  verification: export vs unmigrated reference: %s; escalated keys vs event replay: %s; delta fold vs full export: %s\n",
		verdict(run.ExportConsistent), verdict(run.HotKeysConsistent), verdict(run.FoldConsistent))
	if !run.ExportConsistent {
		return fmt.Errorf("adaptive storm: full export diverged from the unmigrated reference engine")
	}
	if !run.HotKeysConsistent {
		return fmt.Errorf("adaptive storm: an escalated key diverged from the route-event replay")
	}
	if !run.FoldConsistent {
		return fmt.Errorf("adaptive storm: delta-export fold diverged from the full export")
	}
	if run.Escalations < 1 {
		return fmt.Errorf("adaptive storm: the controller never escalated the storm head")
	}
	if run.ShardSkew > o.SkewTarget {
		return fmt.Errorf("adaptive storm: shard skew %.2f exceeds target %.2f (static reference %.2f)",
			run.ShardSkew, o.SkewTarget, refSkew)
	}
	return nil
}
