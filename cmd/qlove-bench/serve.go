package main

// The serve scenario is the distributed plane run as a LONG-RUNNING
// SERVICE: the K worker processes each push delta exports
// (Engine.ExportDelta) to an HTTP aggregation service on an interval while
// still ingesting, and the parent verifies the service's merged view three
// ways once the workers drain:
//
//   - service vs batch: every key the service answers must match — bit for
//     bit — the batch-mode fold of the workers' final FULL export blobs
//     (the same captures, shipped whole), proving the cursor-folded
//     resident state IS the full-export state;
//   - hot-key identity and cross-worker merge identity against
//     never-serialized references, exactly as in the batch scenario;
//   - bandwidth: the per-interval delta bytes against what a full export
//     at each interval WOULD have cost — the ~N/P steady-state cut delta
//     exports exist for. The last interval must be strictly cheaper.
//
// The service is hosted in-process by default (the workers still push over
// real HTTP across process boundaries); -agg points at an external
// `qlove-agg -serve` instance instead, which is how CI smokes the real
// binary.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro"
	"repro/internal/aggsrv"
)

// serveStats is the serve scenario's half of the perf record.
type serveStats struct {
	Intervals         int   `json:"intervals"`
	DeltaBytesTotal   int64 `json:"delta_bytes_total"`
	FullBytesTotal    int64 `json:"full_bytes_total"`
	DeltaBytesLast    int64 `json:"delta_bytes_last_interval"`
	FullBytesLast     int64 `json:"full_bytes_last_interval"`
	ServiceKeys       int   `json:"service_keys"`
	ServiceConsistent bool  `json:"service_consistent"`
	// BackendsConsistent: the workers' final full blobs folded through
	// every store backend (single-map reference, lock-striped,
	// partitioned) produce bit-identical merged views.
	BackendsConsistent bool `json:"backends_consistent"`
	// FaninConsistent: the same blobs pushed through the HTTP fan-in
	// router over fresh replica servers answer /snapshot byte-identically
	// to the single-process service.
	FaninConsistent bool `json:"fanin_consistent"`
}

// serveWorkerStats is the per-worker measurement each serve-mode worker
// prints as one JSON line on stdout, ahead of its final full export blob.
type serveWorkerStats struct {
	Worker     string  `json:"worker"`
	DeltaBytes []int64 `json:"delta_bytes"`
	FullBytes  []int64 `json:"full_bytes"`
}

// serveWorkerID names one worker towards the service. Zero-padded so the
// aggregator's ascending-worker-ID merge order equals the worker-index
// fold order of the batch path — the bit-identity comparison needs the two
// orders to agree.
func serveWorkerID(worker int) string { return fmt.Sprintf("worker-%03d", worker) }

// runServeWorker is the serve-mode worker body: ingest this worker's
// partition, pushing a delta export to the service at every interval
// boundary (and a final flush after Close), then write the stats line and
// the final full blob to stdout for the parent's batch-path comparison.
func runServeWorker(o distOptions, worker int, pushURL string, stdout io.Writer) error {
	seq, err := materializeReports(o.multiKeyOptions)
	if err != nil {
		return err
	}
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       qlove.Config{Spec: o.Spec, Phis: o.Phis},
		Shards:       2,
		QueueDepth:   256,
		ResultBuffer: 1 << 14,
	})
	if err != nil {
		return err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Results() {
		}
	}()

	intervals := o.Intervals
	if intervals < 1 {
		intervals = 1
	}
	id := serveWorkerID(worker)
	client := &http.Client{Timeout: 60 * time.Second}
	var cursor qlove.ExportCursor // one destination, one cursor
	var stats serveWorkerStats
	stats.Worker = id
	push := func() error {
		// The delta blob is what actually crosses the wire; the full
		// export of the same instant is measured (discarded) purely for
		// the bandwidth comparison.
		var buf bytes.Buffer
		if _, err := eng.ExportDelta(&buf, &cursor); err != nil {
			return fmt.Errorf("delta export: %w", err)
		}
		full, err := eng.Export(io.Discard)
		if err != nil {
			return err
		}
		stats.DeltaBytes = append(stats.DeltaBytes, int64(buf.Len()))
		stats.FullBytes = append(stats.FullBytes, full)
		resp, err := client.Post(pushURL+"/push?worker="+url.QueryEscape(id), "application/octet-stream", &buf)
		if err != nil {
			return fmt.Errorf("push: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("push: %s: %s", resp.Status, msg)
		}
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}

	part := &distPartition{workers: o.Workers, mergeKey: mergeKey}
	reports := len(seq.keys)
	seen, nextBoundary := 0, 1
	err = seq.each(func(key string, vs []float64) error {
		if part.assign(key) == worker {
			if err := eng.Push(key, vs); err != nil {
				return err
			}
		}
		seen++
		// Interval boundaries in GLOBAL report-index space, so every
		// worker pushes at the same workload positions; the last interval
		// is the post-Close flush below.
		if nextBoundary < intervals && seen >= nextBoundary*reports/intervals {
			if err := push(); err != nil {
				return err
			}
			nextBoundary++
		}
		return nil
	})
	if err != nil {
		return err
	}
	eng.Close()
	<-drained
	if err := push(); err != nil { // final flush rides the closed-engine path
		return err
	}

	line, err := json.Marshal(stats)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(stdout)
	out.Write(line)
	out.WriteByte('\n')
	if _, err := eng.Export(out); err != nil {
		return err
	}
	return out.Flush()
}

// parseServeWorkerOutput splits one serve-mode worker's stdout into its
// validated stats line and the final full export blob.
func parseServeWorkerOutput(raw []byte) (serveWorkerStats, []byte, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return serveWorkerStats{}, nil, fmt.Errorf("no stats line on stdout")
	}
	var st serveWorkerStats
	if err := json.Unmarshal(raw[:nl], &st); err != nil {
		return serveWorkerStats{}, nil, fmt.Errorf("stats: %w", err)
	}
	if len(st.DeltaBytes) == 0 || len(st.DeltaBytes) != len(st.FullBytes) {
		return serveWorkerStats{}, nil, fmt.Errorf("malformed interval stats %+v", st)
	}
	return st, raw[nl+1:], nil
}

// runDistributedServe spawns the service (in-process unless o.AggURL
// points at an external one) and the worker processes, folds the final
// full blobs through the batch path, and verifies the service's merged
// view against it and against the never-serialized references.
func runDistributedServe(o distOptions) (distRun, error) {
	if o.Workers < 1 {
		return distRun{}, fmt.Errorf("distributed -serve: %d workers", o.Workers)
	}
	if o.Keys < 2 {
		return distRun{}, fmt.Errorf("distributed -serve: needs -keys >= 2, got %d", o.Keys)
	}
	base := o.AggURL
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return distRun{}, err
		}
		defer ln.Close()
		go http.Serve(ln, aggsrv.New(nil).Handler())
		base = "http://" + ln.Addr().String()
	}
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return distRun{}, err
	}

	exe, err := os.Executable()
	if err != nil {
		return distRun{}, err
	}
	args := func(i int) []string {
		return []string{
			workerCmd,
			"-seed", strconv.FormatInt(o.Seed, 10),
			"-keys", strconv.Itoa(o.Keys),
			"-skew", strconv.FormatFloat(o.Skew, 'g', -1, 64),
			"-elements", strconv.Itoa(o.Elements),
			"-report", strconv.Itoa(o.Report),
			"-workers", strconv.Itoa(o.Workers),
			"-worker", strconv.Itoa(i),
			"-push", base,
			"-intervals", strconv.Itoa(o.Intervals),
		}
	}
	cmds := make([]*exec.Cmd, o.Workers)
	outs := make([]bytes.Buffer, o.Workers)
	start := time.Now()
	for i := range cmds {
		cmds[i] = exec.Command(exe, args(i)...)
		cmds[i].Stdout = &outs[i]
		cmds[i].Stderr = os.Stderr
		if err := cmds[i].Start(); err != nil {
			return distRun{}, fmt.Errorf("worker %d: %w", i, err)
		}
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			return distRun{}, fmt.Errorf("worker %d: %w", i, err)
		}
	}
	wall := time.Since(start)

	// Split each worker's stdout into the stats line and the final full
	// blob, then fold the blobs through the batch path.
	blobs := make([][]byte, o.Workers)
	serve := serveStats{Intervals: o.Intervals}
	for i := range outs {
		st, blob, err := parseServeWorkerOutput(outs[i].Bytes())
		if err != nil {
			return distRun{}, fmt.Errorf("worker %d: %w", i, err)
		}
		for j := range st.DeltaBytes {
			serve.DeltaBytesTotal += st.DeltaBytes[j]
			serve.FullBytesTotal += st.FullBytes[j]
		}
		serve.DeltaBytesLast += st.DeltaBytes[len(st.DeltaBytes)-1]
		serve.FullBytesLast += st.FullBytes[len(st.FullBytes)-1]
		blobs[i] = blob
	}
	agg, ws, err := foldAndMeasure(blobs)
	if err != nil {
		return distRun{}, err
	}

	run := distRun{
		Workers:     o.Workers,
		Keys:        o.Keys,
		MergedKeys:  agg.Len(),
		Skew:        o.Skew,
		WallSeconds: wall.Seconds(),
		Wire:        ws,
		Serve:       &serve,
	}
	seq, err := materializeReports(o.multiKeyOptions)
	if err != nil {
		return distRun{}, err
	}
	run.Elements = seq.elements()
	run.ThroughputMevS = float64(seq.elements()) / wall.Seconds() / 1e6

	consistent, serviceKeys, err := verifyService(base, agg)
	if err != nil {
		return distRun{}, err
	}
	serve.ServiceConsistent = consistent
	serve.ServiceKeys = serviceKeys
	if serve.BackendsConsistent, err = backendsConsistent(blobs); err != nil {
		return distRun{}, fmt.Errorf("store backends: %w", err)
	}
	if serve.FaninConsistent, err = faninConsistent(blobs); err != nil {
		return distRun{}, fmt.Errorf("fan-in: %w", err)
	}

	if err := verifyDistributed(&run, agg, seq, o); err != nil {
		return distRun{}, err
	}
	return run, nil
}

// backendsConsistent folds the workers' final full blobs — per worker, in
// worker order, exactly as the service received its pushes — through
// every store backend and the in-process partitioned fan-in, and requires
// the merged views to be bit-identical to the single-map reference's wire
// encoding.
func backendsConsistent(blobs [][]byte) (bool, error) {
	render := func(a aggTarget) ([]byte, error) {
		for w, blob := range blobs {
			if _, err := a.Apply(serveWorkerID(w), bytes.NewReader(blob)); err != nil {
				return nil, err
			}
		}
		snap, err := a.Snapshot()
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var want []byte
	for _, b := range aggBenchBackends(3) {
		agg, err := b.mk()
		if err != nil {
			return false, err
		}
		got, err := render(agg)
		if err != nil {
			return false, fmt.Errorf("backend %s: %w", b.name, err)
		}
		if want == nil {
			want = got // the single-map reference comes first
		} else if !bytes.Equal(got, want) {
			return false, nil
		}
	}
	return true, nil
}

// faninConsistent stands up fresh replica servers and the HTTP fan-in
// router over them, pushes the workers' final full blobs through the
// router, and compares the router's /snapshot byte-for-byte against a
// fresh single-process service fed the same blobs directly.
func faninConsistent(blobs [][]byte) (bool, error) {
	const replicas = 3
	var servers []*http.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	serve := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		servers = append(servers, srv)
		go srv.Serve(ln)
		return "http://" + ln.Addr().String(), nil
	}
	urls := make([]string, replicas)
	for i := range urls {
		u, err := serve(aggsrv.New(nil).Handler())
		if err != nil {
			return false, err
		}
		urls[i] = u
	}
	fanin, err := aggsrv.NewFanin(urls, nil)
	if err != nil {
		return false, err
	}
	faninURL, err := serve(fanin.Handler())
	if err != nil {
		return false, err
	}
	refURL, err := serve(aggsrv.New(nil).Handler())
	if err != nil {
		return false, err
	}

	client := &http.Client{Timeout: 60 * time.Second}
	fetch := func(base string) ([]byte, error) {
		for w, blob := range blobs {
			resp, err := client.Post(base+"/push?worker="+url.QueryEscape(serveWorkerID(w)),
				"application/octet-stream", bytes.NewReader(blob))
			if err != nil {
				return nil, err
			}
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("push worker %d: %s: %s", w, resp.Status, msg)
			}
		}
		resp, err := client.Get(base + "/snapshot")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("snapshot: %s", resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	got, err := fetch(faninURL)
	if err != nil {
		return false, fmt.Errorf("via router: %w", err)
	}
	want, err := fetch(refURL)
	if err != nil {
		return false, fmt.Errorf("single-process: %w", err)
	}
	return bytes.Equal(got, want), nil
}

// waitHealthy polls /healthz until the service answers (an external
// service may still be binding when the bench starts).
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("aggregation service at %s not healthy after %v: %v", base, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// verifyService fetches the service's full merged view and compares it —
// bit for bit, across the JSON float round trip (Go emits shortest
// round-trippable float64s) — against the batch-path fold of the same
// workers' full blobs.
func verifyService(base string, agg qlove.EngineSnapshot) (bool, int, error) {
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Get(base + "/snapshot")
	if err != nil {
		return false, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, 0, fmt.Errorf("snapshot: %s: %s", resp.Status, msg)
	}
	var doc struct {
		Keys []aggsrv.KeyReport `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return false, 0, err
	}
	if len(doc.Keys) != agg.Len() {
		return false, len(doc.Keys), fmt.Errorf("service aggregates %d keys, batch fold has %d", len(doc.Keys), agg.Len())
	}
	for _, rep := range doc.Keys {
		sn, ok := agg.Get(rep.Key)
		if !ok {
			return false, len(doc.Keys), fmt.Errorf("service key %q missing from batch fold", rep.Key)
		}
		if rep.Streams != sn.Streams() || rep.Elements != sn.Elements() {
			return false, len(doc.Keys), nil
		}
		if !bitsEqual(rep.Estimates, sn.Estimates()) {
			return false, len(doc.Keys), nil
		}
	}
	return true, len(doc.Keys), nil
}

// serveDistributedExperiment prints one serve-mode run as text, failing
// unless every verdict holds AND the steady-state delta interval was
// strictly cheaper than a full export.
func serveDistributedExperiment(w io.Writer, o distOptions) error {
	where := o.AggURL
	if where == "" {
		where = "in-process service"
	}
	fmt.Fprintf(w, "distributed service: %d worker processes pushing %d delta intervals to %s, %d keys (zipf %.2f), %d elements\n",
		o.Workers, o.Intervals, where, o.Keys, o.Skew, o.Elements)
	run, err := runDistributedServe(o)
	if err != nil {
		return err
	}
	verdict := func(ok bool) string {
		if ok {
			return "bit-identical"
		}
		return "MISMATCH"
	}
	s := run.Serve
	fmt.Fprintf(w, "  workers=%d merged-keys=%d wall=%.2fs pipeline=%.2f Mev/s\n",
		run.Workers, run.MergedKeys, run.WallSeconds, run.ThroughputMevS)
	fmt.Fprintf(w, "  bandwidth: delta %d B total vs full %d B total; steady-state interval delta %d B vs full %d B (%.1f%%)\n",
		s.DeltaBytesTotal, s.FullBytesTotal, s.DeltaBytesLast, s.FullBytesLast,
		100*float64(s.DeltaBytesLast)/math.Max(float64(s.FullBytesLast), 1))
	fmt.Fprintf(w, "  service (%d keys) vs batch fold of full exports: %s\n", s.ServiceKeys, verdict(s.ServiceConsistent))
	fmt.Fprintf(w, "  hot-key vs single monitor: %s\n", verdict(run.HotKeyConsistent))
	fmt.Fprintf(w, "  cross-worker merge (streams=%d) vs in-process merge: %s\n",
		run.CrossMergeStreams, verdict(run.CrossMergeConsistent))
	fmt.Fprintf(w, "  store backends (map/striped/partitioned) folding the same blobs: %s\n", verdict(s.BackendsConsistent))
	fmt.Fprintf(w, "  HTTP fan-in router /snapshot vs single-process service: %s\n", verdict(s.FaninConsistent))
	if !s.ServiceConsistent || !run.HotKeyConsistent || !run.CrossMergeConsistent ||
		!s.BackendsConsistent || !s.FaninConsistent {
		return fmt.Errorf("service aggregation diverged from reference")
	}
	if s.DeltaBytesLast >= s.FullBytesLast {
		return fmt.Errorf("delta export did not beat full export at steady state (%d >= %d bytes)", s.DeltaBytesLast, s.FullBytesLast)
	}
	return nil
}
