package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro"
)

// The distributed scenario is the paper's distributed-aggregation sketch
// run for real: K worker ENGINES IN SEPARATE OS PROCESSES each ingest
// their partition of one Zipf-keyed workload, export their snapshots as
// wire blobs over stdout, and the parent aggregates the blobs centrally —
// exactly the worker/aggregator split of cmd/qlove-agg. Two checks gate
// the run:
//
//   - Hot-key identity: the workload is partitioned BY KEY (every key's
//     whole sub-stream goes to one worker), so the aggregated capture of
//     the Zipf head must answer bit-for-bit what a single reference
//     Monitor fed the interleaved stream answers — across an encode,
//     a process boundary, a decode and a merge.
//   - Cross-worker merge identity: ONE designated key (the second-hottest)
//     is instead split round-robin across ALL workers, so its aggregated
//     capture is a genuine K-stream merge; it must answer bit-for-bit
//     what merging the K sub-stream captures in-process (never
//     serialized) answers.
//
// The parent also times the codec over the real blobs, feeding the -json
// perf record's encode/decode MB/s and ns/snapshot columns.

// workerCmd is the hidden argv[1] the parent uses to re-exec itself as a
// worker.
const workerCmd = "__distributed-worker"

// distOptions parameterizes one distributed run.
type distOptions struct {
	multiKeyOptions
	Workers int
	// Serve switches to the streaming-service scenario: workers push
	// delta exports over HTTP to a running aggregation service on an
	// interval instead of writing one batch blob (see serve.go).
	Serve bool
	// AggURL is the base URL of an EXTERNAL qlove-agg -serve instance for
	// the serve scenario; empty hosts the service in-process.
	AggURL string
	// Intervals is how many delta pushes each serve-mode worker makes
	// (the last one is the post-ingest flush).
	Intervals int
}

// defaultDistOptions scales the scenario: 20k keys, 5M elements, 3 workers
// at scale 1. Spec, ϕ set and report size match the multikey scenario so
// the two perf-record sections are comparable.
func defaultDistOptions(scale float64, seed int64, keys, workers int, skew float64) distOptions {
	if keys <= 0 {
		keys = int(20_000 * scale)
		if keys < 500 {
			keys = 500
		}
	}
	if workers <= 0 {
		workers = 3
	}
	elements := int(5_000_000 * scale)
	// Enough traffic past the enumeration pass that the Zipf head keys —
	// including the round-robin merge key — report many times: at least
	// one traffic report per key on top of the heartbeat.
	if min := 2 * 128 * keys; elements < min {
		elements = min
	}
	return distOptions{
		multiKeyOptions: multiKeyOptions{
			Spec:     qlove.Window{Size: 512, Period: 128},
			Phis:     []float64{0.5, 0.9, 0.99},
			Keys:     keys,
			Skew:     skew,
			Report:   128,
			Elements: elements,
			Seed:     seed,
		},
		Workers: workers,
	}
}

// mergeKey is the designated cross-worker key: index 1 of the fixed
// workload.Keyed naming scheme — the second-hottest key under Zipf (index
// 0 stays whole for the hot-key identity check). The default key floor is
// 500, and runDistributed rejects explicit -keys values below 2, so the
// key exists in every run.
const mergeKey = "key-000001"

// distPartition deterministically assigns each report to a worker: the
// merge key round-robins across all workers (building the K disjoint
// sub-streams the cross-worker check merges); every other key hashes
// whole to one worker. Both sides of the process boundary walk the same
// report sequence through the same partitioner state, so they agree
// without any coordination.
type distPartition struct {
	workers   int
	mergeKey  string
	mergeSeen int
}

func (p *distPartition) assign(key string) int {
	if key == p.mergeKey {
		w := p.mergeSeen % p.workers
		p.mergeSeen++
		return w
	}
	// Inline FNV-1a: hash.Hash32 would allocate per report, inside the
	// scenario's timed window.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(p.workers))
}

// distributedWorker is the re-exec'd worker process: rebuild the exact
// report sequence from the flags (generation is deterministic in the
// seed), ingest this worker's partition into a keyed Engine, and export
// the engine's snapshot blob on stdout.
func distributedWorker(args []string) error {
	fs := flag.NewFlagSet(workerCmd, flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "workload seed")
	keys := fs.Int("keys", 0, "key cardinality")
	skew := fs.Float64("skew", 1.2, "zipf skew")
	elements := fs.Int("elements", 0, "total elements")
	report := fs.Int("report", 128, "values per report")
	workers := fs.Int("workers", 1, "worker count")
	worker := fs.Int("worker", 0, "this worker's index")
	push := fs.String("push", "", "serve mode: base URL of the aggregation service to push deltas to")
	intervals := fs.Int("intervals", 8, "serve mode: delta pushes per run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := defaultDistOptions(1, *seed, *keys, *workers, *skew)
	o.Elements, o.Report = *elements, *report
	if *push != "" {
		o.Intervals = *intervals
		return runServeWorker(o, *worker, *push, os.Stdout)
	}
	seq, err := materializeReports(o.multiKeyOptions)
	if err != nil {
		return err
	}
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       qlove.Config{Spec: o.Spec, Phis: o.Phis},
		Shards:       2,
		QueueDepth:   256,
		ResultBuffer: 1 << 14,
	})
	if err != nil {
		return err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Results() {
		}
	}()
	part := &distPartition{workers: *workers, mergeKey: mergeKey}
	err = seq.each(func(key string, vs []float64) error {
		if part.assign(key) != *worker {
			return nil
		}
		return eng.Push(key, vs)
	})
	if err != nil {
		return err
	}
	eng.Close()
	<-drained
	// One buffered stream, not one pipe write per ~190-byte frame.
	out := bufio.NewWriter(os.Stdout)
	if _, err := eng.Export(out); err != nil {
		return err
	}
	return out.Flush()
}

// wireStats is the codec half of the distributed perf record, measured
// over the run's real blobs.
type wireStats struct {
	Snapshots        int     `json:"snapshots"`
	BlobBytes        int64   `json:"blob_bytes"`
	EncodeMBPerS     float64 `json:"encode_mb_s"`
	DecodeMBPerS     float64 `json:"decode_mb_s"`
	EncodeNsPerSnap  float64 `json:"encode_ns_per_snapshot"`
	DecodeNsPerSnap  float64 `json:"decode_ns_per_snapshot"`
	BytesPerSnapshot float64 `json:"bytes_per_snapshot"`
}

// distRun is one distributed measurement, emitted into the -json perf
// record.
type distRun struct {
	Workers              int         `json:"workers"`
	Keys                 int         `json:"keys"`
	MergedKeys           int         `json:"merged_keys"`
	Elements             int         `json:"elements"`
	Skew                 float64     `json:"skew"`
	WallSeconds          float64     `json:"wall_seconds"`
	ThroughputMevS       float64     `json:"throughput_mev_s"`
	HotKeyConsistent     bool        `json:"hot_key_consistent"`
	CrossMergeConsistent bool        `json:"cross_merge_consistent"`
	CrossMergeStreams    int         `json:"cross_merge_streams"`
	Wire                 wireStats   `json:"wire"`
	Serve                *serveStats `json:"serve,omitempty"`
}

// foldAndMeasure decodes every worker blob (timing the codec), folds them
// into one capture in worker-index order — the per-key merge fold order the
// bit-identity checks rely on — and times a re-encode of the merged view.
func foldAndMeasure(blobs [][]byte) (qlove.EngineSnapshot, wireStats, error) {
	var agg qlove.EngineSnapshot
	var blobBytes int64
	var decodeTime time.Duration
	snapshots := 0
	for i, blob := range blobs {
		var one qlove.EngineSnapshot
		t0 := time.Now()
		n, err := one.ReadFrom(bytes.NewReader(blob))
		decodeTime += time.Since(t0)
		if err != nil {
			return qlove.EngineSnapshot{}, wireStats{}, fmt.Errorf("worker %d blob: %w", i, err)
		}
		if n != int64(len(blob)) {
			return qlove.EngineSnapshot{}, wireStats{}, fmt.Errorf("worker %d blob: %d of %d bytes consumed", i, n, len(blob))
		}
		blobBytes += n
		snapshots += one.Len()
		if agg, err = agg.Merge(one); err != nil {
			return qlove.EngineSnapshot{}, wireStats{}, fmt.Errorf("merge worker %d: %w", i, err)
		}
	}
	// Encode throughput over the merged capture (same captures, one pass).
	t0 := time.Now()
	encBytes, err := agg.WriteTo(io.Discard)
	encodeTime := time.Since(t0)
	if err != nil {
		return qlove.EngineSnapshot{}, wireStats{}, err
	}
	return agg, wireStats{
		Snapshots:        snapshots,
		BlobBytes:        blobBytes,
		EncodeMBPerS:     mbPerS(encBytes, encodeTime),
		DecodeMBPerS:     mbPerS(blobBytes, decodeTime),
		EncodeNsPerSnap:  nsPer(encodeTime, agg.Len()),
		DecodeNsPerSnap:  nsPer(decodeTime, snapshots),
		BytesPerSnapshot: float64(blobBytes) / float64(max(snapshots, 1)),
	}, nil
}

// runDistributed spawns the workers, aggregates their exports and runs
// both identity checks.
func runDistributed(o distOptions) (distRun, error) {
	if o.Workers < 1 {
		return distRun{}, fmt.Errorf("distributed: %d workers", o.Workers)
	}
	if o.Keys < 2 {
		// Both identity checks need distinct hot and merge keys; fail
		// before spawning workers rather than after the run with a
		// confusing missing-key error.
		return distRun{}, fmt.Errorf("distributed: needs -keys >= 2, got %d", o.Keys)
	}
	exe, err := os.Executable()
	if err != nil {
		return distRun{}, err
	}
	args := func(i int) []string {
		return []string{
			workerCmd,
			"-seed", strconv.FormatInt(o.Seed, 10),
			"-keys", strconv.Itoa(o.Keys),
			"-skew", strconv.FormatFloat(o.Skew, 'g', -1, 64),
			"-elements", strconv.Itoa(o.Elements),
			"-report", strconv.Itoa(o.Report),
			"-workers", strconv.Itoa(o.Workers),
			"-worker", strconv.Itoa(i),
		}
	}
	// All workers run concurrently — genuinely separate OS processes over
	// the partitioned workload. The wall clock covers the whole worker
	// tier: workload generation, ingest, export.
	cmds := make([]*exec.Cmd, o.Workers)
	blobs := make([]bytes.Buffer, o.Workers)
	start := time.Now()
	for i := range cmds {
		cmds[i] = exec.Command(exe, args(i)...)
		cmds[i].Stdout = &blobs[i]
		cmds[i].Stderr = os.Stderr
		if err := cmds[i].Start(); err != nil {
			return distRun{}, fmt.Errorf("worker %d: %w", i, err)
		}
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			return distRun{}, fmt.Errorf("worker %d: %w", i, err)
		}
	}
	wall := time.Since(start)

	raw := make([][]byte, len(blobs))
	for i := range blobs {
		raw[i] = blobs[i].Bytes()
	}
	agg, ws, err := foldAndMeasure(raw)
	if err != nil {
		return distRun{}, err
	}

	run := distRun{
		Workers:     o.Workers,
		Keys:        o.Keys,
		MergedKeys:  agg.Len(),
		Skew:        o.Skew,
		WallSeconds: wall.Seconds(),
		Wire:        ws,
	}
	seq, err := materializeReports(o.multiKeyOptions)
	if err != nil {
		return distRun{}, err
	}
	run.Elements = seq.elements()
	run.ThroughputMevS = float64(seq.elements()) / wall.Seconds() / 1e6
	if err := verifyDistributed(&run, agg, seq, o); err != nil {
		return distRun{}, err
	}
	return run, nil
}

// verifyDistributed replays the reference paths and fills the consistency
// verdicts.
func verifyDistributed(run *distRun, agg qlove.EngineSnapshot, seq reportSeq, o distOptions) error {
	part := &distPartition{workers: o.Workers, mergeKey: mergeKey}

	// One reference Monitor for the hot key's interleaved sub-stream; one
	// per worker for the merge key's round-robin split.
	cfg := qlove.Config{Spec: o.Spec, Phis: o.Phis}
	hotRef, err := newRefMonitor(cfg, o.Spec)
	if err != nil {
		return err
	}
	mergeRefs := make([]*refMonitor, o.Workers)
	err = seq.each(func(key string, vs []float64) error {
		w := part.assign(key)
		switch key {
		case seq.hot:
			hotRef.mon.PushBatch(vs, nil)
		case mergeKey:
			if mergeRefs[w] == nil {
				r, err := newRefMonitor(cfg, o.Spec)
				if err != nil {
					return err
				}
				mergeRefs[w] = r
			}
			mergeRefs[w].mon.PushBatch(vs, nil)
		}
		return nil
	})
	if err != nil {
		return err
	}

	hotGot, ok := agg.Get(seq.hot)
	if !ok {
		return fmt.Errorf("hot key %q missing from aggregate", seq.hot)
	}
	run.HotKeyConsistent = bitsEqual(hotGot.Estimates(), hotRef.policy.Snapshot().Estimates())

	var refSnaps []qlove.Snapshot
	for _, r := range mergeRefs {
		if r != nil {
			refSnaps = append(refSnaps, r.policy.Snapshot())
		}
	}
	refMerged, err := qlove.MergeSnapshots(refSnaps)
	if err != nil {
		return err
	}
	mergeGot, ok := agg.Get(mergeKey)
	if !ok {
		return fmt.Errorf("merge key %q missing from aggregate", mergeKey)
	}
	run.CrossMergeStreams = mergeGot.Streams()
	run.CrossMergeConsistent = bitsEqual(mergeGot.Estimates(), refMerged.Estimates())
	if o.Workers >= 2 && run.CrossMergeStreams < 2 {
		// A single-stream "merge" would pass vacuously; the run was too
		// small to route the merge key to several workers.
		return fmt.Errorf("cross-worker merge covered %d stream(s); raise -scale so the merge key reports on >=2 workers",
			run.CrossMergeStreams)
	}
	return nil
}

// refMonitor pairs a reference Monitor with its snapshot-capable policy.
type refMonitor struct {
	policy *qlove.QLOVE
	mon    *qlove.Monitor
}

func newRefMonitor(cfg qlove.Config, spec qlove.Window) (*refMonitor, error) {
	p, err := qlove.New(cfg)
	if err != nil {
		return nil, err
	}
	m, err := qlove.NewMonitor(p, spec)
	if err != nil {
		return nil, err
	}
	return &refMonitor{policy: p, mon: m}, nil
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func mbPerS(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

func nsPer(d time.Duration, n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(n)
}

// distributedExperiment prints one distributed run as text, failing the
// invocation if either identity check misses.
func distributedExperiment(w io.Writer, o distOptions) error {
	fmt.Fprintf(w, "distributed plane: %d worker processes, %d keys (zipf %.2f), %s windows, %d elements\n",
		o.Workers, o.Keys, o.Skew, o.Spec, o.Elements)
	run, err := runDistributed(o)
	if err != nil {
		return err
	}
	verdict := func(ok bool) string {
		if ok {
			return "bit-identical"
		}
		return "MISMATCH"
	}
	fmt.Fprintf(w, "  workers=%d merged-keys=%d wall=%.2fs pipeline=%.2f Mev/s\n",
		run.Workers, run.MergedKeys, run.WallSeconds, run.ThroughputMevS)
	fmt.Fprintf(w, "  wire: %d snapshots, %d bytes (%.0f B/snap), encode %.1f MB/s (%.0f ns/snap), decode %.1f MB/s (%.0f ns/snap)\n",
		run.Wire.Snapshots, run.Wire.BlobBytes, run.Wire.BytesPerSnapshot,
		run.Wire.EncodeMBPerS, run.Wire.EncodeNsPerSnap, run.Wire.DecodeMBPerS, run.Wire.DecodeNsPerSnap)
	fmt.Fprintf(w, "  hot-key vs single monitor: %s\n", verdict(run.HotKeyConsistent))
	fmt.Fprintf(w, "  cross-worker merge (streams=%d) vs in-process merge: %s\n",
		run.CrossMergeStreams, verdict(run.CrossMergeConsistent))
	if !run.HotKeyConsistent || !run.CrossMergeConsistent {
		return fmt.Errorf("distributed aggregation diverged from reference")
	}
	return nil
}
