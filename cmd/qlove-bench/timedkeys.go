package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro"
	"repro/internal/workload"
)

// The timedkeys scenario measures the Engine's TIMED mode — per-key
// wall-clock windows sealed by shard ticks (the paper's §2 "evaluate
// every one minute for the elements seen last one hour" at keyed scale).
// A fake clock drives the sweep deterministically: each epoch pushes one
// round of keyed reports at a frozen timestamp, then advances the clock
// one timed period and ticks every shard. The hottest key is then
// verified bit-for-bit against a single TimedMonitor fed that key's
// sub-stream with identical timestamps and ticks.

// timedKeysOptions parameterizes one scenario run.
type timedKeysOptions struct {
	Spec       qlove.Window // count spec governing operator budgets
	Phis       []float64
	Keys       []int           // key cardinalities to sweep
	Ticks      []time.Duration // timed periods to sweep
	SubWindows int             // timed window = SubWindows × tick
	Skew       float64
	Report     int // values per keyed report
	Epochs     int // tick epochs per run
	Reports    int // reports per epoch
	Shards     int
	Seed       int64
}

// defaultTimedKeysOptions scales the scenario: at scale 1, 20k keys and
// ~10M elements per run.
func defaultTimedKeysOptions(scale float64, seed int64, keys int, skew float64) timedKeysOptions {
	if keys <= 0 {
		keys = int(20_000 * scale)
		if keys < 200 {
			keys = 200
		}
	}
	epochs := 64
	reports := int(1_500 * scale)
	if min := keys/epochs + 1; reports < min {
		// Every key reports at least once over the run.
		reports = min
	}
	return timedKeysOptions{
		Spec:       qlove.Window{Size: 4096, Period: 512},
		Phis:       []float64{0.5, 0.9, 0.99},
		Keys:       []int{keys / 4, keys},
		Ticks:      []time.Duration{time.Second, 10 * time.Second},
		SubWindows: 8,
		Skew:       skew,
		Report:     96,
		Epochs:     epochs,
		Reports:    reports,
		Shards:     4,
		Seed:       seed,
	}
}

// timedKeysRun is one (keys, tick) measurement, also emitted into the
// -json perf record.
type timedKeysRun struct {
	Shards           int     `json:"shards"`
	Keys             int     `json:"keys"`
	KeysObserved     int     `json:"keys_observed"`
	TickSeconds      float64 `json:"tick_seconds"`
	WindowSeconds    float64 `json:"window_seconds"`
	Elements         int     `json:"elements"`
	Epochs           int     `json:"epochs"`
	ThroughputMevS   float64 `json:"throughput_mev_s"`
	Evaluations      uint64  `json:"evaluations"`
	DroppedResults   uint64  `json:"dropped_results"`
	HotKeyConsistent bool    `json:"hot_key_consistent"`
}

// timedReportSeq is the deterministic epoch-structured report sequence,
// materialized before the clock starts (like the multikey scenario's): an
// enumeration pass spread over the early epochs so every key is monitored,
// then skew-distributed traffic.
type timedReportSeq struct {
	keys   []string  // epoch e's reports at [e*perEpoch, (e+1)*perEpoch)
	vals   []float64 // report i's values at [i*report, (i+1)*report)
	report int
	per    int    // reports per epoch
	hot    string // the Zipf head, replayed through the reference monitor
}

func materializeTimedReports(o timedKeysOptions, keys int) (timedReportSeq, error) {
	gen, err := workload.NewKeyed(o.Seed, keys, o.Skew, workload.NewNetMon(o.Seed))
	if err != nil {
		return timedReportSeq{}, err
	}
	total := o.Epochs * o.Reports
	if total < keys {
		total = keys
	}
	seq := timedReportSeq{
		keys:   make([]string, total),
		vals:   make([]float64, total*o.Report),
		report: o.Report,
		per:    (total + o.Epochs - 1) / o.Epochs,
		hot:    gen.Key(0),
	}
	for i := 0; i < total; i++ {
		vs := seq.vals[i*o.Report : i*o.Report : (i+1)*o.Report]
		if i < keys {
			seq.keys[i] = gen.Key(i)
			gen.Values(vs)
		} else {
			key, _ := gen.NextReport(vs)
			seq.keys[i] = key
		}
	}
	return seq, nil
}

// epoch returns the report range of epoch e.
func (r timedReportSeq) epoch(e int) (lo, hi int) {
	lo = e * r.per
	if lo > len(r.keys) {
		lo = len(r.keys)
	}
	hi = lo + r.per
	if hi > len(r.keys) {
		hi = len(r.keys)
	}
	return lo, hi
}

func (r timedReportSeq) values(i int) []float64 {
	return r.vals[i*r.report : (i+1)*r.report]
}

func (r timedReportSeq) elements() int { return len(r.vals) }

// epochs returns how many epochs carry at least one report.
func (r timedReportSeq) epochs(configured int) int {
	used := (len(r.keys) + r.per - 1) / r.per
	if used > configured {
		return configured
	}
	return used
}

// runTimedKeysScenario ingests the sequence under one (keys, tick)
// configuration and verifies the hottest key against a TimedMonitor
// reference.
func runTimedKeysScenario(o timedKeysOptions, seq timedReportSeq, keys int, tick time.Duration) (timedKeysRun, error) {
	cfg := qlove.Config{Spec: o.Spec, Phis: o.Phis}
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := newBenchClock(start)
	window := time.Duration(o.SubWindows) * tick
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       cfg,
		Shards:       o.Shards,
		QueueDepth:   256,
		ResultBuffer: 1 << 14,
		TimedWindow:  window,
		TimedPeriod:  tick,
		Clock:        clk.now,
	})
	if err != nil {
		return timedKeysRun{}, err
	}
	var evals uint64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Results() {
			evals++
		}
	}()

	epochs := seq.epochs(o.Epochs)
	begin := time.Now()
	for e := 0; e < epochs; e++ {
		lo, hi := seq.epoch(e)
		for i := lo; i < hi; i++ {
			if err := eng.Push(seq.keys[i], seq.values(i)); err != nil {
				return timedKeysRun{}, err
			}
		}
		// Fence: a control round on every shard orders the queued batches
		// before the clock moves, so deliveries are stamped with this
		// epoch's (frozen) time and the run is deterministic.
		eng.Keys()
		clk.advance(tick)
		eng.Tick()
	}
	keysObserved := eng.Keys()
	engSnap, hotOK := eng.Query(seq.hot)
	eng.Close()
	elapsed := time.Since(begin)
	<-drained
	if !hotOK {
		return timedKeysRun{}, fmt.Errorf("hot key %q not monitored", seq.hot)
	}

	run := timedKeysRun{
		Shards:         o.Shards,
		Keys:           keys,
		KeysObserved:   keysObserved,
		TickSeconds:    tick.Seconds(),
		WindowSeconds:  window.Seconds(),
		Elements:       seq.elements(),
		Epochs:         epochs,
		ThroughputMevS: float64(seq.elements()) / elapsed.Seconds() / 1e6,
		Evaluations:    evals,
		DroppedResults: eng.Dropped(),
	}

	// The reference: one TimedMonitor fed the hot key's reports with
	// identical timestamps, flushed at every tick.
	q, err := qlove.New(cfg)
	if err != nil {
		return timedKeysRun{}, err
	}
	ref, err := qlove.NewTimedMonitor(q, window, tick)
	if err != nil {
		return timedKeysRun{}, err
	}
	for e := 0; e < epochs; e++ {
		at := start.Add(time.Duration(e) * tick)
		lo, hi := seq.epoch(e)
		for i := lo; i < hi; i++ {
			if seq.keys[i] == seq.hot {
				ref.PushBatch(at, seq.values(i))
			}
		}
		ref.Flush(at.Add(tick))
	}
	run.HotKeyConsistent = bitsEqual(engSnap.Estimates(), q.Snapshot().Estimates())
	return run, nil
}

// benchClock is a concurrency-safe manual clock for the fake-clock runs.
type benchClock struct {
	mu sync.Mutex
	at time.Time
}

func newBenchClock(start time.Time) *benchClock { return &benchClock{at: start} }

func (c *benchClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *benchClock) advance(d time.Duration) {
	c.mu.Lock()
	c.at = c.at.Add(d)
	c.mu.Unlock()
}

// timedKeysExperiment prints the keys × tick sweep as a table.
func timedKeysExperiment(w io.Writer, o timedKeysOptions) error {
	fmt.Fprintf(w, "timed keys: wall-clock windows of %d ticks, %s count-spec, %d-value reports, %d epochs, shards=%d, zipf %.2f\n",
		o.SubWindows, o.Spec, o.Report, o.Epochs, o.Shards, o.Skew)
	for _, keys := range o.Keys {
		seq, err := materializeTimedReports(o, keys)
		if err != nil {
			return err
		}
		for _, tick := range o.Ticks {
			run, err := runTimedKeysScenario(o, seq, keys, tick)
			if err != nil {
				return err
			}
			verdict := "bit-identical"
			if !run.HotKeyConsistent {
				verdict = "MISMATCH"
			}
			fmt.Fprintf(w, "  keys=%-7d tick=%-6s window=%-6s throughput=%8.2f Mev/s  evals=%-8d dropped=%-6d hot-key vs TimedMonitor: %s\n",
				run.KeysObserved, tick, time.Duration(run.WindowSeconds*float64(time.Second)),
				run.ThroughputMevS, run.Evaluations, run.DroppedResults, verdict)
			if !run.HotKeyConsistent {
				return fmt.Errorf("keys=%d tick=%v: hot-key snapshot diverged from TimedMonitor reference", keys, tick)
			}
			if run.Evaluations == 0 {
				return fmt.Errorf("keys=%d tick=%v: no timed evaluations produced", keys, tick)
			}
		}
	}
	return nil
}
