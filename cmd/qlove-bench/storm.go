package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro"
	"repro/internal/workload"
)

// The storm variant of the multikey scenario models a pathological hot-key
// storm: after the enumeration pass, a fixed fraction of ALL traffic
// collapses onto the Zipf head, so one shard carries most of the load no
// matter how many shards exist. The scenario reports per-shard skew from
// the engine's stats plane, then repeats the run with routing salt enabled
// and verifies the salted hot key bit-for-bit against per-sub-stream
// reference Monitors merged in salt order.

// stormOptions parameterizes the storm run.
type stormOptions struct {
	multiKeyOptions
	// HotFrac is the fraction of traffic reports sent to the hot key.
	HotFrac float64
	// Salt is the RouteSalt used for the salted run (sub-streams per key);
	// the adaptive variant uses it as the controller's escalation fan.
	Salt int
	// SkewTarget is the shard skew the ADAPTIVE storm must reach with
	// RouteSalt unset (the scenario fails above it).
	SkewTarget float64
}

// defaultStormOptions scales the storm: same universe as multikey, half of
// all traffic on the head key, salt 8.
func defaultStormOptions(scale float64, seed int64, keys int, skew float64) stormOptions {
	return stormOptions{
		multiKeyOptions: defaultMultiKeyOptions(scale, seed, keys, skew),
		HotFrac:         0.5,
		Salt:            8,
		SkewTarget:      2.2,
	}
}

// materializeStorm draws the storm sequence: the usual enumeration pass,
// then traffic where each report lands on the hot key with probability
// HotFrac and otherwise follows the Zipf draw.
func materializeStorm(o stormOptions) (reportSeq, error) {
	gen, err := workload.NewKeyed(o.Seed, o.Keys, o.Skew, workload.NewNetMon(o.Seed))
	if err != nil {
		return reportSeq{}, err
	}
	reports := o.Elements / o.Report
	if reports < o.Keys {
		reports = o.Keys
	}
	seq := reportSeq{
		keys:   make([]string, reports),
		vals:   make([]float64, reports*o.Report),
		report: o.Report,
		hot:    gen.Key(0),
	}
	rng := rand.New(rand.NewSource(o.Seed ^ 0x5707)) // storm coin, independent of the value stream
	for i := 0; i < reports; i++ {
		vs := seq.vals[i*o.Report : i*o.Report : (i+1)*o.Report]
		switch {
		case i < o.Keys:
			seq.keys[i] = gen.Key(i)
			gen.Values(vs)
		case rng.Float64() < o.HotFrac:
			seq.keys[i] = seq.hot
			gen.Values(vs)
		default:
			key, _ := gen.NextReport(vs)
			seq.keys[i] = key
		}
	}
	return seq, nil
}

// stormRun is one storm measurement (salted or not).
type stormRun struct {
	Salt           int     `json:"salt"`
	ThroughputMevS float64 `json:"throughput_mev_s"`
	ShardSkew      float64 `json:"shard_skew"`
	HotShards      []int   `json:"hot_shards"`
	QueueHighWater int     `json:"queue_high_water"`
	Consistent     bool    `json:"consistent"`
}

// runStorm ingests the storm sequence serially (serial replay keeps the
// salt counter's sub-stream assignment reproducible for verification) at
// the given salt and reports skew from the stats plane.
func runStorm(o stormOptions, seq reportSeq, shards, salt int) (stormRun, error) {
	eng, err := qlove.NewEngine(qlove.EngineConfig{
		Config:       qlove.Config{Spec: o.Spec, Phis: o.Phis},
		Shards:       shards,
		QueueDepth:   256,
		ResultBuffer: 1 << 14,
		RouteSalt:    salt,
	})
	if err != nil {
		return stormRun{}, err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range eng.Results() {
		}
	}()
	start := time.Now()
	if err := seq.each(eng.Push); err != nil {
		return stormRun{}, err
	}
	eng.Close()
	elapsed := time.Since(start)
	<-drained

	st := eng.Stats()
	run := stormRun{
		Salt:           salt,
		ThroughputMevS: float64(seq.elements()) / elapsed.Seconds() / 1e6,
		ShardSkew:      st.Skew(),
		HotShards:      st.HotShards(2),
		QueueHighWater: st.Total().QueueHighWater,
	}
	if salt > 1 {
		run.Consistent, err = verifySaltedHotKey(eng, seq, o, salt)
	} else {
		run.Consistent, err = verifyHotKey(eng, seq, o.multiKeyOptions)
	}
	if err != nil {
		return stormRun{}, err
	}
	return run, nil
}

// verifySaltedHotKey rebuilds the hot key's salted sub-streams outside the
// engine and compares the engine's merged view bit-for-bit. Under serial
// replay the engine assigns push i (counting every key's pushes) to
// sub-stream i mod salt, so the reference feeds report i to Monitor
// i mod salt when it targets the hot key, then merges the per-sub-stream
// snapshots in salt order — exactly what Engine.Query does internally.
func verifySaltedHotKey(eng *qlove.Engine, seq reportSeq, o stormOptions, salt int) (bool, error) {
	snap, ok := eng.Query(seq.hot)
	if !ok {
		return false, fmt.Errorf("hot key %q not monitored", seq.hot)
	}
	cfg := qlove.Config{Spec: o.Spec, Phis: o.Phis}
	refs := make([]*refMonitor, salt)
	for j := range refs {
		ref, err := newRefMonitor(cfg, o.Spec)
		if err != nil {
			return false, err
		}
		refs[j] = ref
	}
	for i, key := range seq.keys {
		if key == seq.hot {
			refs[i%salt].mon.PushBatch(seq.vals[i*seq.report:(i+1)*seq.report], nil)
		}
	}
	snaps := make([]qlove.Snapshot, salt)
	for j, ref := range refs {
		snaps[j] = ref.policy.Snapshot()
	}
	merged, err := qlove.MergeSnapshots(snaps)
	if err != nil {
		return false, err
	}
	return bitsEqual(snap.Estimates(), merged.Estimates()), nil
}

// stormExperiment runs the storm unsalted and salted at the top shard
// count and prints the skew the salt removes.
func stormExperiment(w io.Writer, o stormOptions) error {
	shards := o.Shards[len(o.Shards)-1]
	fmt.Fprintf(w, "hot-key storm: %d keys (zipf %.2f), %.0f%% of traffic on the head key, %d shards, salt %d, GOMAXPROCS=%d\n",
		o.Keys, o.Skew, o.HotFrac*100, shards, o.Salt, runtime.GOMAXPROCS(0))
	seq, err := materializeStorm(o)
	if err != nil {
		return err
	}
	for _, salt := range []int{0, o.Salt} {
		run, err := runStorm(o, seq, shards, salt)
		if err != nil {
			return err
		}
		verdict := "bit-identical"
		if !run.Consistent {
			verdict = "MISMATCH"
		}
		label := "unsalted"
		if salt > 1 {
			label = fmt.Sprintf("salt=%d  ", salt)
		}
		fmt.Fprintf(w, "  %s throughput=%8.2f Mev/s  shard-skew=%.2f  hot-shards=%v  queue-high-water=%-4d hot-key snapshot: %s\n",
			label, run.ThroughputMevS, run.ShardSkew, run.HotShards, run.QueueHighWater, verdict)
		if !run.Consistent {
			return fmt.Errorf("storm salt=%d: hot-key snapshot diverged from reference", salt)
		}
	}
	return nil
}
