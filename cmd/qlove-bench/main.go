// Command qlove-bench regenerates the tables and figures of the paper's
// evaluation (§5). Run with no arguments for the full suite in paper
// order, or name individual experiments:
//
//	qlove-bench                 # everything, paper-scale datasets
//	qlove-bench -scale 0.1 table1 fig4
//	qlove-bench -full fig5      # include the 100M-element windows
//
// Experiment names: fig1 table1 fig4 fig5 table2 table3 table4 table5
// redundancy pareto fewk-throughput errbound — plus multikey, the keyed
// Engine scaling scenario (shards × keys throughput sweep with a
// bit-equivalence check of the hottest key's snapshot against a
// single-Monitor reference; tune with -keys and -skew), and timedkeys,
// the Engine's wall-clock-window scenario (keys × tick sweep under a
// deterministic fake clock, hot key verified bit-for-bit against a
// single-TimedMonitor reference).
//
// The -json flag switches to a machine-readable perf record instead: a
// single JSON document with the ingestion throughput and peak space of
// every registered policy on the standard NetMon workload, plus the
// engine's multi-key runs at one and many shards, so successive PRs can
// diff the performance trajectory:
//
//	qlove-bench -json -scale 0.1 > perf.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	// The distributed scenario re-execs this binary as its worker tier;
	// dispatch the hidden subcommand before any flag parsing.
	if len(os.Args) > 1 && os.Args[1] == workerCmd {
		if err := distributedWorker(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "qlove-bench worker:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qlove-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qlove-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "dataset scale in (0, 1]; 1 = paper-size (10M)")
	seed := fs.Int64("seed", 1, "workload seed")
	full := fs.Bool("full", false, "unlock the most expensive sweeps (Fig 5's 100M windows)")
	list := fs.Bool("list", false, "list experiment names and exit")
	jsonOut := fs.Bool("json", false, "emit a JSON per-policy throughput/space record instead of experiments")
	keys := fs.Int("keys", 0, "multikey/distributed: key cardinality (0 = scaled default)")
	skew := fs.Float64("skew", 1.2, "multikey/distributed: zipf skew over keys (0 = uniform)")
	workers := fs.Int("workers", 3, "distributed: worker process count")
	serve := fs.Bool("serve", false, "distributed: push deltas to a streaming aggregation service instead of batch blobs")
	agg := fs.String("agg", "", "distributed -serve: base URL of an external qlove-agg -serve (empty = in-process service)")
	intervals := fs.Int("intervals", 8, "distributed -serve: delta pushes per worker")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range bench.Order {
			fmt.Println(name)
		}
		fmt.Println("multikey")
		fmt.Println("timedkeys")
		fmt.Println("distributed")
		return nil
	}
	if *jsonOut {
		return runJSON(*scale, *seed, *keys, *skew, *workers, *intervals)
	}
	names := fs.Args()
	if len(names) == 0 {
		names = append(append([]string(nil), bench.Order...), "multikey", "timedkeys", "distributed")
	}
	opts := bench.Options{W: os.Stdout, Seed: *seed, Scale: *scale, Full: *full}
	for _, name := range names {
		exp, ok := bench.Experiments[name]
		if !ok && name != "multikey" && name != "timedkeys" && name != "distributed" {
			return fmt.Errorf("unknown experiment %q (use -list)", name)
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		switch name {
		case "multikey":
			if err := multiKeyExperiment(os.Stdout, defaultMultiKeyOptions(*scale, *seed, *keys, *skew)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "timedkeys":
			if err := timedKeysExperiment(os.Stdout, defaultTimedKeysOptions(*scale, *seed, *keys, *skew)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "distributed":
			o := defaultDistOptions(*scale, *seed, *keys, *workers, *skew)
			o.Serve, o.AggURL, o.Intervals = *serve, *agg, *intervals
			if o.Serve {
				if err := serveDistributedExperiment(os.Stdout, o); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
			} else if err := distributedExperiment(os.Stdout, o); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		default:
			if err := exp(opts); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// perfRecord is the -json output schema: one ingestion measurement per
// registered policy on the standard NetMon workload. The schema field is
// versioned so trajectory tooling can evolve the format.
type perfRecord struct {
	Schema   string       `json:"schema"`
	Window   int          `json:"window"`
	Period   int          `json:"period"`
	Elements int          `json:"elements"`
	Seed     int64        `json:"seed"`
	Policies []policyPerf `json:"policies"`
	// Engine holds the keyed multi-key scaling runs (single shard vs the
	// full shard sweep top), added with the Engine PR.
	Engine []engineRun `json:"engine,omitempty"`
	// TimedKeys holds the wall-clock-window runs (keys × tick under a
	// deterministic fake clock), added with the timed-keys PR.
	TimedKeys []timedKeysRun `json:"timed_keys,omitempty"`
	// Distributed holds the multi-process aggregation run (worker engines
	// exporting wire blobs to a central merge), including the codec's
	// encode/decode MB/s and ns/snapshot, added with the wire PR.
	Distributed *distRun `json:"distributed,omitempty"`
}

type policyPerf struct {
	Name           string  `json:"name"`
	ThroughputMevS float64 `json:"throughput_mev_s"`
	PeakSpace      int     `json:"peak_space"`
	Evaluations    int     `json:"evaluations"`
}

// runJSON measures every registered policy under the Figure 4 window shape
// (100K window, 1K period), plus the keyed Engine at one and many shards
// and the distributed worker/aggregator pipeline — run in SERVE mode, so
// the record carries the steady-state delta-vs-full export bandwidth — and
// writes one JSON document to stdout.
func runJSON(scale float64, seed int64, keys int, skew float64, workers, intervals int) error {
	spec := qlove.Window{Size: 100_000, Period: 1000}
	n := int(2_000_000 * scale)
	if min := spec.Size + 10*spec.Period; n < min {
		n = min
	}
	n -= n % spec.Period
	data := workload.Generate(workload.NewNetMon(seed), n)
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	rec := perfRecord{
		Schema:   "qlove-bench/v1",
		Window:   spec.Size,
		Period:   spec.Period,
		Elements: n,
		Seed:     seed,
	}
	reg := qlove.Registry()
	for _, name := range []string{"qlove", "qlove-fewk", "exact", "cmqs", "am", "random", "moment", "gk"} {
		p, err := reg.New(name, spec, phis)
		if err != nil {
			return err
		}
		_, st, err := qlove.Run(p, spec, data)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rec.Policies = append(rec.Policies, policyPerf{
			Name:           name,
			ThroughputMevS: st.ThroughputMevS(),
			PeakSpace:      st.MaxSpace,
			Evaluations:    st.Evaluations,
		})
	}
	mko := defaultMultiKeyOptions(scale, seed, keys, skew)
	seq, err := materializeReports(mko)
	if err != nil {
		return err
	}
	for _, shards := range []int{mko.Shards[0], mko.Shards[len(mko.Shards)-1]} {
		run, err := runEngineScenario(mko, seq, shards)
		if err != nil {
			return fmt.Errorf("engine shards=%d: %w", shards, err)
		}
		rec.Engine = append(rec.Engine, run)
	}
	tko := defaultTimedKeysOptions(scale, seed, keys, skew)
	for _, kc := range tko.Keys {
		seq, err := materializeTimedReports(tko, kc)
		if err != nil {
			return err
		}
		for _, tick := range tko.Ticks {
			run, err := runTimedKeysScenario(tko, seq, kc, tick)
			if err != nil {
				return fmt.Errorf("timedkeys keys=%d tick=%v: %w", kc, tick, err)
			}
			if !run.HotKeyConsistent {
				return fmt.Errorf("timedkeys keys=%d tick=%v: hot key diverged from TimedMonitor reference", kc, tick)
			}
			rec.TimedKeys = append(rec.TimedKeys, run)
		}
	}
	do := defaultDistOptions(scale, seed, keys, workers, skew)
	do.Serve, do.Intervals = true, intervals
	dist, err := runDistributedServe(do)
	if err != nil {
		return fmt.Errorf("distributed: %w", err)
	}
	if !dist.HotKeyConsistent || !dist.CrossMergeConsistent || !dist.Serve.ServiceConsistent {
		return fmt.Errorf("distributed: aggregation diverged from reference")
	}
	if dist.Serve.DeltaBytesLast >= dist.Serve.FullBytesLast {
		return fmt.Errorf("distributed: delta export did not beat full export at steady state (%d >= %d bytes)",
			dist.Serve.DeltaBytesLast, dist.Serve.FullBytesLast)
	}
	rec.Distributed = &dist
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
