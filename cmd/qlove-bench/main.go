// Command qlove-bench regenerates the tables and figures of the paper's
// evaluation (§5). Run with no arguments for the full suite in paper
// order, or name individual experiments:
//
//	qlove-bench                 # everything, paper-scale datasets
//	qlove-bench -scale 0.1 table1 fig4
//	qlove-bench -full fig5      # include the 100M-element windows
//
// Experiment names: fig1 table1 fig4 fig5 table2 table3 table4 table5
// redundancy pareto fewk-throughput errbound — plus multikey, the keyed
// Engine scaling scenario (shards × keys throughput sweep with a
// bit-equivalence check of the hottest key's snapshot against a
// single-Monitor reference; tune with -keys and -skew; add -storm for the
// hot-key storm variant that reports per-shard skew and compares salted
// routing), timedkeys, the Engine's wall-clock-window scenario (keys ×
// tick sweep under a deterministic fake clock, hot key verified
// bit-for-bit against a single-TimedMonitor reference), openloop, the
// open-loop Poisson SLA ramp reporting the max sustainable op rate under
// a p99 latency SLA (tune with -sla and -bp), scaling, the
// GOMAXPROCS × shards ingest matrix with one pusher per processor, and
// resilience, the failure-path gate: a disk-backed aggregation service
// child SIGKILLed mid-delta-chain and restarted (recovered and resumed
// views must be bit-identical), plus a degraded fan-in run with one dead
// replica (partial serving, loud health, probe reinstatement), and
// resize, the replication gate: a replication-2 fan-in that keeps
// accepting pushes on quorum with a replica down, resyncs the replica
// when it returns empty, and grows the tier live via /slots/move — all
// verified bit-identically against an unresized single server.
//
// The -json flag switches to a machine-readable perf record instead: a
// single JSON document with the ingestion throughput and peak space of
// every registered policy on the standard NetMon workload, the engine's
// multi-key runs plus the GOMAXPROCS × shards scaling matrix, and the
// open-loop ramp, so successive PRs can diff the performance trajectory:
//
//	qlove-bench -json -scale 0.1 > perf.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/loadgen"
	"repro/internal/workload"
)

func main() {
	// The distributed scenario re-execs this binary as its worker tier and
	// the resilience scenario as its aggregation-service child; dispatch
	// the hidden subcommands before any flag parsing.
	if len(os.Args) > 1 && os.Args[1] == workerCmd {
		if err := distributedWorker(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "qlove-bench worker:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == aggServeCmd {
		if err := aggServeChild(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "qlove-bench agg-server:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qlove-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qlove-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "dataset scale in (0, 1]; 1 = paper-size (10M)")
	seed := fs.Int64("seed", 1, "workload seed")
	full := fs.Bool("full", false, "unlock the most expensive sweeps (Fig 5's 100M windows)")
	list := fs.Bool("list", false, "list experiment names and exit")
	jsonOut := fs.Bool("json", false, "emit a JSON per-policy throughput/space record instead of experiments")
	keys := fs.Int("keys", 0, "multikey/distributed: key cardinality (0 = scaled default)")
	skew := fs.Float64("skew", 1.2, "multikey/distributed: zipf skew over keys (0 = uniform)")
	workers := fs.Int("workers", 3, "distributed: worker process count")
	serve := fs.Bool("serve", false, "distributed: push deltas to a streaming aggregation service instead of batch blobs")
	agg := fs.String("agg", "", "distributed -serve: base URL of an external qlove-agg -serve (empty = in-process service)")
	intervals := fs.Int("intervals", 8, "distributed -serve: delta pushes per worker")
	aggStrict := fs.Bool("agg-strict", false, "aggregator: fail unless the striped store reaches the single-map throughput at top concurrency")
	storm := fs.Bool("storm", false, "multikey: run the hot-key storm variant (per-shard skew, salted vs unsalted routing)")
	salt := fs.Int("salt", 8, "multikey -storm: RouteSalt sub-streams for the salted run")
	adaptive := fs.Bool("adaptive", false, "multikey -storm: adaptive variant — no RouteSalt, a moving hot key, the occupancy controller rebalances live")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	sla := fs.Duration("sla", 25*time.Millisecond, "openloop: p99 latency SLA gating the ramp")
	bp := fs.String("bp", "block", "openloop: engine backpressure mode (block | drop)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qlove-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained set before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qlove-bench: memprofile:", err)
			}
		}()
	}
	var backpressure qlove.Backpressure
	switch *bp {
	case "block":
		backpressure = qlove.BackpressureBlock
	case "drop":
		backpressure = qlove.BackpressureDrop
	default:
		return fmt.Errorf("unknown -bp mode %q (block | drop)", *bp)
	}
	if *list {
		for _, name := range bench.Order {
			fmt.Println(name)
		}
		fmt.Println("multikey")
		fmt.Println("timedkeys")
		fmt.Println("distributed")
		fmt.Println("aggregator")
		fmt.Println("openloop")
		fmt.Println("scaling")
		fmt.Println("resilience")
		fmt.Println("resize")
		return nil
	}
	if *jsonOut {
		return runJSON(jsonOptions{
			Scale: *scale, Seed: *seed, Keys: *keys, Skew: *skew,
			Workers: *workers, Intervals: *intervals,
			SLA: *sla, Backpressure: backpressure,
			AggStrict: *aggStrict,
		})
	}
	names := fs.Args()
	if len(names) == 0 {
		names = append(append([]string(nil), bench.Order...), "multikey", "timedkeys", "distributed", "aggregator", "openloop", "resilience", "resize")
	}
	opts := bench.Options{W: os.Stdout, Seed: *seed, Scale: *scale, Full: *full}
	isLocal := map[string]bool{
		"multikey": true, "timedkeys": true, "distributed": true,
		"aggregator": true, "openloop": true, "scaling": true,
		"resilience": true, "resize": true,
	}
	for _, name := range names {
		exp, ok := bench.Experiments[name]
		if !ok && !isLocal[name] {
			return fmt.Errorf("unknown experiment %q (use -list)", name)
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		switch name {
		case "multikey":
			if *storm {
				o := defaultStormOptions(*scale, *seed, *keys, *skew)
				o.Salt = *salt
				experiment := stormExperiment
				if *adaptive {
					experiment = adaptiveStormExperiment
				}
				if err := experiment(os.Stdout, o); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
			} else if err := multiKeyExperiment(os.Stdout, defaultMultiKeyOptions(*scale, *seed, *keys, *skew)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "timedkeys":
			if err := timedKeysExperiment(os.Stdout, defaultTimedKeysOptions(*scale, *seed, *keys, *skew)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "distributed":
			o := defaultDistOptions(*scale, *seed, *keys, *workers, *skew)
			o.Serve, o.AggURL, o.Intervals = *serve, *agg, *intervals
			if o.Serve {
				if err := serveDistributedExperiment(os.Stdout, o); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
			} else if err := distributedExperiment(os.Stdout, o); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "aggregator":
			o := defaultAggBenchOptions(*scale, *seed, *keys)
			o.Strict = *aggStrict
			if err := aggregatorExperiment(os.Stdout, o); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "openloop":
			o := defaultOpenLoopOptions(*scale, *seed, *keys, *skew)
			o.SLA = *sla
			o.Backpressure = backpressure
			if err := openLoopExperiment(os.Stdout, o); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "scaling":
			if err := scalingExperiment(os.Stdout, defaultMultiKeyOptions(*scale, *seed, *keys, *skew)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "resilience":
			if err := resilienceExperiment(os.Stdout, defaultResilienceOptions(*seed)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		case "resize":
			if err := resizeExperiment(os.Stdout, defaultResizeOptions(*seed)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		default:
			if err := exp(opts); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// perfRecord is the -json output schema: one ingestion measurement per
// registered policy on the standard NetMon workload. The schema field is
// versioned so trajectory tooling can evolve the format; v2 turned the
// engine section into an object ({runs, scaling}) and added openloop.
type perfRecord struct {
	Schema   string       `json:"schema"`
	Window   int          `json:"window"`
	Period   int          `json:"period"`
	Elements int          `json:"elements"`
	Seed     int64        `json:"seed"`
	Policies []policyPerf `json:"policies"`
	// Engine holds the keyed multi-key runs (single shard vs the full
	// shard sweep top) and the GOMAXPROCS × shards scaling matrix.
	Engine *engineSection `json:"engine,omitempty"`
	// OpenLoop holds the open-loop Poisson SLA ramp: max sustainable op
	// rate under the p99 SLA, with every measured step.
	OpenLoop *openLoopRun `json:"openloop,omitempty"`
	// TimedKeys holds the wall-clock-window runs (keys × tick under a
	// deterministic fake clock), added with the timed-keys PR.
	TimedKeys []timedKeysRun `json:"timed_keys,omitempty"`
	// Distributed holds the multi-process aggregation run (worker engines
	// exporting wire blobs to a central merge), including the codec's
	// encode/decode MB/s and ns/snapshot, added with the wire PR.
	Distributed *distRun `json:"distributed,omitempty"`
	// Storm holds the hot-key storm runs: the static salted-vs-unsalted
	// baseline and the adaptive variant with its skew-over-time series and
	// route-event trace, added with the adaptive-routing PR.
	Storm *stormSection `json:"storm,omitempty"`
	// Aggregator holds the aggregation-tier sweep (concurrent push ×
	// query throughput per store backend across goroutine and key counts,
	// every backend verified bit-identical to the single-map serial
	// fold), added with the aggregation-tier PR.
	Aggregator *aggBenchSection `json:"aggregator,omitempty"`
}

// stormSection groups the perf record's hot-key storm measurements.
type stormSection struct {
	// Static is the fixed-head storm at salt 0 (the imbalance) and the
	// configured RouteSalt (the manual mitigation baseline).
	Static []stormRun `json:"static"`
	// Adaptive is the moving-head storm under the occupancy controller.
	Adaptive *adaptiveStormRun `json:"adaptive,omitempty"`
}

// engineSection groups the perf record's engine measurements.
type engineSection struct {
	// Runs is the serial-pusher shard sweep (the v1 "engine" array).
	Runs []engineRun `json:"runs"`
	// Scaling is the GOMAXPROCS × shards matrix with one concurrent
	// pusher per processor (Mev/s per point, speedup vs the 1×1 cell).
	Scaling []scalingPoint `json:"scaling"`
}

type policyPerf struct {
	Name           string  `json:"name"`
	ThroughputMevS float64 `json:"throughput_mev_s"`
	PeakSpace      int     `json:"peak_space"`
	Evaluations    int     `json:"evaluations"`
}

// jsonOptions parameterizes runJSON.
type jsonOptions struct {
	Scale        float64
	Seed         int64
	Keys         int
	Skew         float64
	Workers      int
	Intervals    int
	SLA          time.Duration
	Backpressure qlove.Backpressure
	AggStrict    bool
}

// runJSON measures every registered policy under the Figure 4 window shape
// (100K window, 1K period), plus the keyed Engine at one and many shards,
// the GOMAXPROCS × shards scaling matrix, the open-loop SLA ramp, and the
// distributed worker/aggregator pipeline — run in SERVE mode, so the
// record carries the steady-state delta-vs-full export bandwidth — and
// writes one JSON document to stdout.
func runJSON(o jsonOptions) error {
	scale, seed, keys, skew := o.Scale, o.Seed, o.Keys, o.Skew
	spec := qlove.Window{Size: 100_000, Period: 1000}
	n := int(2_000_000 * scale)
	if min := spec.Size + 10*spec.Period; n < min {
		n = min
	}
	n -= n % spec.Period
	data := workload.Generate(workload.NewNetMon(seed), n)
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	rec := perfRecord{
		Schema:   "qlove-bench/v2",
		Window:   spec.Size,
		Period:   spec.Period,
		Elements: n,
		Seed:     seed,
	}
	reg := qlove.Registry()
	for _, name := range []string{"qlove", "qlove-fewk", "exact", "cmqs", "am", "random", "moment", "gk"} {
		p, err := reg.New(name, spec, phis)
		if err != nil {
			return err
		}
		_, st, err := qlove.Run(p, spec, data)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rec.Policies = append(rec.Policies, policyPerf{
			Name:           name,
			ThroughputMevS: st.ThroughputMevS(),
			PeakSpace:      st.MaxSpace,
			Evaluations:    st.Evaluations,
		})
	}
	mko := defaultMultiKeyOptions(scale, seed, keys, skew)
	seq, err := materializeReports(mko)
	if err != nil {
		return err
	}
	eng := &engineSection{}
	for _, shards := range []int{mko.Shards[0], mko.Shards[len(mko.Shards)-1]} {
		run, err := runEngineScenario(mko, seq, shards)
		if err != nil {
			return fmt.Errorf("engine shards=%d: %w", shards, err)
		}
		eng.Runs = append(eng.Runs, run)
	}
	eng.Scaling, err = runScalingMatrix(mko, seq)
	if err != nil {
		return fmt.Errorf("engine scaling: %w", err)
	}
	rec.Engine = eng
	olo := defaultOpenLoopOptions(scale, seed, keys, skew)
	if o.SLA > 0 {
		olo.SLA = o.SLA
	}
	olo.Backpressure = o.Backpressure
	openloop, err := runOpenLoop(olo)
	if err != nil {
		return fmt.Errorf("openloop: %w", err)
	}
	// MaxSustainableRPS 0 (even the first step failed — a noisy or starved
	// runner) is still a valid record; the ramp's step reasons say why.
	rec.OpenLoop = &openloop
	tko := defaultTimedKeysOptions(scale, seed, keys, skew)
	for _, kc := range tko.Keys {
		seq, err := materializeTimedReports(tko, kc)
		if err != nil {
			return err
		}
		for _, tick := range tko.Ticks {
			run, err := runTimedKeysScenario(tko, seq, kc, tick)
			if err != nil {
				return fmt.Errorf("timedkeys keys=%d tick=%v: %w", kc, tick, err)
			}
			if !run.HotKeyConsistent {
				return fmt.Errorf("timedkeys keys=%d tick=%v: hot key diverged from TimedMonitor reference", kc, tick)
			}
			rec.TimedKeys = append(rec.TimedKeys, run)
		}
	}
	sto := defaultStormOptions(scale, seed, keys, skew)
	stormSec := &stormSection{}
	stormSeq, err := materializeStorm(sto)
	if err != nil {
		return fmt.Errorf("storm: %w", err)
	}
	stormShards := sto.Shards[len(sto.Shards)-1]
	for _, salt := range []int{0, sto.Salt} {
		run, err := runStorm(sto, stormSeq, stormShards, salt)
		if err != nil {
			return fmt.Errorf("storm salt=%d: %w", salt, err)
		}
		if !run.Consistent {
			return fmt.Errorf("storm salt=%d: hot-key snapshot diverged from reference", salt)
		}
		stormSec.Static = append(stormSec.Static, run)
	}
	sched := loadgen.HotSchedule{{Until: 0.5, Key: 0}, {Until: 1, Key: 1}}
	adaptSeq, heads, err := materializeAdaptiveStorm(sto, sched)
	if err != nil {
		return fmt.Errorf("adaptive storm: %w", err)
	}
	_, refBlob, err := runStaticReference(sto, adaptSeq, stormShards)
	if err != nil {
		return fmt.Errorf("adaptive storm reference: %w", err)
	}
	adaptRun, err := runAdaptiveStorm(sto, adaptSeq, sched, heads, stormShards, refBlob)
	if err != nil {
		return fmt.Errorf("adaptive storm: %w", err)
	}
	if !adaptRun.ExportConsistent || !adaptRun.HotKeysConsistent || !adaptRun.FoldConsistent {
		return fmt.Errorf("adaptive storm: verification failed (export=%v replay=%v fold=%v)",
			adaptRun.ExportConsistent, adaptRun.HotKeysConsistent, adaptRun.FoldConsistent)
	}
	if adaptRun.ShardSkew > sto.SkewTarget {
		return fmt.Errorf("adaptive storm: shard skew %.2f exceeds target %.2f", adaptRun.ShardSkew, sto.SkewTarget)
	}
	stormSec.Adaptive = &adaptRun
	rec.Storm = stormSec
	do := defaultDistOptions(scale, seed, keys, o.Workers, skew)
	do.Serve, do.Intervals = true, o.Intervals
	dist, err := runDistributedServe(do)
	if err != nil {
		return fmt.Errorf("distributed: %w", err)
	}
	if !dist.HotKeyConsistent || !dist.CrossMergeConsistent || !dist.Serve.ServiceConsistent ||
		!dist.Serve.BackendsConsistent || !dist.Serve.FaninConsistent {
		return fmt.Errorf("distributed: aggregation diverged from reference")
	}
	if dist.Serve.DeltaBytesLast >= dist.Serve.FullBytesLast {
		return fmt.Errorf("distributed: delta export did not beat full export at steady state (%d >= %d bytes)",
			dist.Serve.DeltaBytesLast, dist.Serve.FullBytesLast)
	}
	rec.Distributed = &dist
	abo := defaultAggBenchOptions(scale, seed, keys)
	abo.Strict = o.AggStrict
	aggSec, err := runAggBench(abo)
	if err != nil {
		return fmt.Errorf("aggregator: %w", err)
	}
	rec.Aggregator = &aggSec
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
