// Command qlove-bench regenerates the tables and figures of the paper's
// evaluation (§5). Run with no arguments for the full suite in paper
// order, or name individual experiments:
//
//	qlove-bench                 # everything, paper-scale datasets
//	qlove-bench -scale 0.1 table1 fig4
//	qlove-bench -full fig5      # include the 100M-element windows
//
// Experiment names: fig1 table1 fig4 fig5 table2 table3 table4 table5
// redundancy pareto fewk-throughput errbound.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qlove-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qlove-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "dataset scale in (0, 1]; 1 = paper-size (10M)")
	seed := fs.Int64("seed", 1, "workload seed")
	full := fs.Bool("full", false, "unlock the most expensive sweeps (Fig 5's 100M windows)")
	list := fs.Bool("list", false, "list experiment names and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range bench.Order {
			fmt.Println(name)
		}
		return nil
	}
	names := fs.Args()
	if len(names) == 0 {
		names = bench.Order
	}
	opts := bench.Options{W: os.Stdout, Seed: *seed, Scale: *scale, Full: *full}
	for _, name := range names {
		exp, ok := bench.Experiments[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", name)
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := exp(opts); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
