package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestMain dispatches the resilience scenario's hidden agg-server
// subcommand: under `go test`, os.Executable is the TEST binary, so the
// re-exec'd child lands here instead of main(). Everything else runs the
// tests as usual.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == aggServeCmd {
		if err := aggServeChild(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "qlove-bench agg-server:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestResilienceScenario runs the full scenario — the SIGKILL restart
// phase against real re-exec'd service children AND the degraded fan-in
// phase — exactly as `qlove-bench resilience` does.
func TestResilienceScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns service subprocesses; skipped in -short")
	}
	var out bytes.Buffer
	if err := resilienceExperiment(&out, defaultResilienceOptions(1)); err != nil {
		t.Fatalf("resilience scenario: %v\n%s", err, out.Bytes())
	}
	text := out.String()
	for _, want := range []string{"bit-identical", "probe reinstatement"} {
		if !strings.Contains(text, want) {
			t.Fatalf("scenario output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "MISMATCH") || strings.Contains(text, "FAIL") {
		t.Fatalf("scenario reported a failing verdict:\n%s", text)
	}
	t.Logf("\n%s", text)
}
