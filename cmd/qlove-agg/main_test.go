package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// exportBlob runs one worker engine over the given keys and returns its
// export.
func exportBlob(t *testing.T, cfg qlove.Config, seeds map[string]int64) []byte {
	t.Helper()
	e, err := qlove.NewEngine(qlove.EngineConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for key, seed := range seeds {
		if err := e.Push(key, workload.Generate(workload.NewNetMon(seed), 3*cfg.Spec.Size)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	var buf bytes.Buffer
	if _, err := e.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAggregateAndReport(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 400, Period: 100}, Phis: []float64{0.5, 0.99}, FewK: true}
	blobA := exportBlob(t, cfg, map[string]int64{"shared": 1, "only-a": 2})
	blobB := exportBlob(t, cfg, map[string]int64{"shared": 3, "only-b": 4})

	dir := t.TempDir()
	fa, fb := filepath.Join(dir, "a.bin"), filepath.Join(dir, "b.bin")
	if err := os.WriteFile(fa, blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fb, blobB, 0o644); err != nil {
		t.Fatal(err)
	}

	agg, err := aggregate([]string{fa, fb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 3 {
		t.Fatalf("keys = %v", agg.Keys())
	}
	sn, ok := agg.Get("shared")
	if !ok || sn.Streams() != 2 {
		t.Fatalf("shared streams = %d ok=%v", sn.Streams(), ok)
	}

	// The file path and the stdin path (concatenated blobs) agree
	// bit-for-bit.
	var stdinAgg qlove.EngineSnapshot
	joined := append(append([]byte(nil), blobA...), blobB...)
	if _, err := stdinAgg.ReadFrom(bytes.NewReader(joined)); err != nil {
		t.Fatal(err)
	}
	for _, k := range agg.Keys() {
		a, _ := agg.Query(k)
		b, ok := stdinAgg.Query(k)
		if !ok {
			t.Fatalf("stdin path missing %q", k)
		}
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("key %q: file path %v != stdin path %v", k, a, b)
			}
		}
	}

	// Table output names every key.
	var out bytes.Buffer
	if err := report(&out, agg, false, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shared", "only-a", "only-b"} {
		if !strings.Contains(out.String(), k) {
			t.Fatalf("table output missing %q:\n%s", k, out.String())
		}
	}

	// JSON output round-trips and honours -top.
	out.Reset()
	if err := report(&out, agg, true, 1, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Keys []keyReport `json:"keys"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Keys) != 1 || doc.Keys[0].Key != "shared" {
		t.Fatalf("-top 1 selected %+v (want the 2-stream key)", doc.Keys)
	}

	// -phi selects one configured quantile and refuses unknown ones.
	out.Reset()
	if err := report(&out, agg, false, 0, 0.99); err != nil {
		t.Fatal(err)
	}
	if err := report(&out, agg, false, 0, 0.95); err == nil {
		t.Fatal("unconfigured ϕ answered")
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 200, Period: 50}, Phis: []float64{0.5}}
	blob := exportBlob(t, cfg, map[string]int64{"svc": 7})
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(blob), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "svc") {
		t.Fatalf("output: %s", out.String())
	}
	// Corrupt input surfaces a wrapped error, not a panic.
	if err := run(nil, bytes.NewReader(blob[:len(blob)-3]), &out); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

// TestServeFlagValidation: -serve refuses positional blob arguments (blobs
// arrive over HTTP in serve mode), and the serve-only / disk-only /
// fanin-only flags are rejected out of place.
func TestServeFlagValidation(t *testing.T) {
	if err := run([]string{"-serve", "some.bin"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no blob arguments") {
		t.Fatalf("serve with args: %v", err)
	}
	if err := run([]string{"-dir", "/tmp/x"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "only apply with -serve") {
		t.Fatalf("-dir without -serve: %v", err)
	}
	if err := run([]string{"-serve", "-store", "disk"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-dir") {
		t.Fatalf("-store disk without -dir: %v", err)
	}
	if err := run([]string{"-serve", "-fanin-timeout", "5s"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-fanin-timeout only applies") {
		t.Fatalf("-fanin-timeout without -fanin: %v", err)
	}
	if err := run([]string{"-serve", "-fanin", "http://a:1", "-dir", "/tmp/x"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "belong on the replicas") {
		t.Fatalf("-dir on the fan-in router: %v", err)
	}
	if err := run([]string{"-serve", "-quorum", "2"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-quorum only applies with -fanin") {
		t.Fatalf("-quorum without -fanin: %v", err)
	}
	if err := run([]string{"-serve", "-replication", "2"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-replication 2 needs") {
		t.Fatalf("-replication on one replica: %v", err)
	}
	if err := run([]string{"-serve", "-replication", "0"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-replication 0 < 1") {
		t.Fatalf("-replication 0: %v", err)
	}
	if err := run([]string{"-replication", "2"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "only apply with -serve") {
		t.Fatalf("-replication without -serve: %v", err)
	}
}

// buildAgg compiles the qlove-agg binary once per test binary run.
var buildAgg = struct {
	once sync.Once
	path string
	err  error
}{}

func aggBinary(t *testing.T) string {
	t.Helper()
	buildAgg.once.Do(func() {
		dir, err := os.MkdirTemp("", "qlove-agg-bin")
		if err != nil {
			buildAgg.err = err
			return
		}
		bin := filepath.Join(dir, "qlove-agg")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			buildAgg.err = fmt.Errorf("build qlove-agg: %v\n%s", err, out)
			return
		}
		buildAgg.path = bin
	})
	if buildAgg.err != nil {
		t.Fatal(buildAgg.err)
	}
	return buildAgg.path
}

// aggProc is one real qlove-agg -serve subprocess.
type aggProc struct {
	cmd  *exec.Cmd
	addr string
}

// startAgg launches the binary with the given extra flags on an ephemeral
// port and waits until it answers /healthz.
func startAgg(t *testing.T, extra ...string) *aggProc {
	t.Helper()
	args := append([]string{"-serve", "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(aggBinary(t), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The serve line prints the bound address: "serving on http://HOST:PORT".
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "http://"); i >= 0 {
				addr := line[i+len("http://"):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				addrCh <- addr
				break
			}
		}
		io.Copy(io.Discard, stderr) // keep draining so the child never blocks
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("qlove-agg never printed its serve line")
	}
	p := &aggProc{cmd: cmd, addr: addr}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			p.kill()
			t.Fatal("qlove-agg never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill delivers SIGKILL — the crash, not a shutdown — and reaps the child.
func (p *aggProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

func httpPush(t *testing.T, addr, worker string, blob []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/push?worker="+worker, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push to %s: %s: %s", addr, resp.Status, body)
	}
}

func httpSnapshot(t *testing.T, addr string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot from %s: %s: %s", addr, resp.Status, body)
	}
	return body
}

// TestServeCrashRestartRecovery is the real-process crash test: a
// disk-backed qlove-agg is SIGKILLed mid delta chain, restarted on the
// same directory, and must (a) immediately serve a /snapshot bit-identical
// to an uninterrupted reference at the same point, and (b) accept the
// REST of each worker's delta chain — cursors recovered, no re-bootstrap —
// ending bit-identical to the reference that never died.
func TestServeCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	cfg := qlove.Config{Spec: qlove.Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}

	// Two workers, four delta blobs each (the first bootstraps).
	const workers, rounds = 2, 4
	blobs := make([][][]byte, workers)
	for w := 0; w < workers; w++ {
		eng, err := qlove.NewEngine(qlove.EngineConfig{Config: cfg, Shards: 2, RouteSalt: 2})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for range eng.Results() {
			}
		}()
		gen := workload.NewNetMon(int64(80 + w))
		var cur qlove.ExportCursor
		for round := 0; round < rounds; round++ {
			for ki, key := range []string{"api/latency", "db/qps", "cache/hits"} {
				if err := eng.Push(key, workload.Generate(gen, 150+50*ki)); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if _, err := eng.ExportDelta(&buf, &cur); err != nil {
				t.Fatal(err)
			}
			blobs[w] = append(blobs[w], buf.Bytes())
		}
		eng.Close()
	}
	worker := func(w int) string { return fmt.Sprintf("w%d", w) }

	dir := t.TempDir()
	victim := startAgg(t, "-store", "disk", "-dir", dir)
	ref := startAgg(t) // uninterrupted in-memory reference

	// First half of each chain to both, then SIGKILL the disk service.
	for w := 0; w < workers; w++ {
		for _, blob := range blobs[w][:2] {
			httpPush(t, victim.addr, worker(w), blob)
			httpPush(t, ref.addr, worker(w), blob)
		}
	}
	preCrash := httpSnapshot(t, ref.addr)
	victim.kill()

	revived := startAgg(t, "-store", "disk", "-dir", dir)
	defer revived.kill()
	defer ref.kill()

	// (a) The recovered snapshot is bit-identical to the uninterrupted
	// reference at the crash point.
	if got := httpSnapshot(t, revived.addr); !bytes.Equal(got, preCrash) {
		t.Fatalf("recovered /snapshot diverges from uninterrupted reference (%d vs %d bytes)",
			len(got), len(preCrash))
	}

	// (b) The delta chains RESUME against the recovered cursors.
	for w := 0; w < workers; w++ {
		for _, blob := range blobs[w][2:] {
			httpPush(t, revived.addr, worker(w), blob)
			httpPush(t, ref.addr, worker(w), blob)
		}
	}
	got, want := httpSnapshot(t, revived.addr), httpSnapshot(t, ref.addr)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-resume /snapshot diverges from uninterrupted reference (%d vs %d bytes)",
			len(got), len(want))
	}
}
