package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/workload"
)

// exportBlob runs one worker engine over the given keys and returns its
// export.
func exportBlob(t *testing.T, cfg qlove.Config, seeds map[string]int64) []byte {
	t.Helper()
	e, err := qlove.NewEngine(qlove.EngineConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for key, seed := range seeds {
		if err := e.Push(key, workload.Generate(workload.NewNetMon(seed), 3*cfg.Spec.Size)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	var buf bytes.Buffer
	if _, err := e.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAggregateAndReport(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 400, Period: 100}, Phis: []float64{0.5, 0.99}, FewK: true}
	blobA := exportBlob(t, cfg, map[string]int64{"shared": 1, "only-a": 2})
	blobB := exportBlob(t, cfg, map[string]int64{"shared": 3, "only-b": 4})

	dir := t.TempDir()
	fa, fb := filepath.Join(dir, "a.bin"), filepath.Join(dir, "b.bin")
	if err := os.WriteFile(fa, blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fb, blobB, 0o644); err != nil {
		t.Fatal(err)
	}

	agg, err := aggregate([]string{fa, fb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 3 {
		t.Fatalf("keys = %v", agg.Keys())
	}
	sn, ok := agg.Get("shared")
	if !ok || sn.Streams() != 2 {
		t.Fatalf("shared streams = %d ok=%v", sn.Streams(), ok)
	}

	// The file path and the stdin path (concatenated blobs) agree
	// bit-for-bit.
	var stdinAgg qlove.EngineSnapshot
	joined := append(append([]byte(nil), blobA...), blobB...)
	if _, err := stdinAgg.ReadFrom(bytes.NewReader(joined)); err != nil {
		t.Fatal(err)
	}
	for _, k := range agg.Keys() {
		a, _ := agg.Query(k)
		b, ok := stdinAgg.Query(k)
		if !ok {
			t.Fatalf("stdin path missing %q", k)
		}
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("key %q: file path %v != stdin path %v", k, a, b)
			}
		}
	}

	// Table output names every key.
	var out bytes.Buffer
	if err := report(&out, agg, false, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shared", "only-a", "only-b"} {
		if !strings.Contains(out.String(), k) {
			t.Fatalf("table output missing %q:\n%s", k, out.String())
		}
	}

	// JSON output round-trips and honours -top.
	out.Reset()
	if err := report(&out, agg, true, 1, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Keys []keyReport `json:"keys"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Keys) != 1 || doc.Keys[0].Key != "shared" {
		t.Fatalf("-top 1 selected %+v (want the 2-stream key)", doc.Keys)
	}

	// -phi selects one configured quantile and refuses unknown ones.
	out.Reset()
	if err := report(&out, agg, false, 0, 0.99); err != nil {
		t.Fatal(err)
	}
	if err := report(&out, agg, false, 0, 0.95); err == nil {
		t.Fatal("unconfigured ϕ answered")
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 200, Period: 50}, Phis: []float64{0.5}}
	blob := exportBlob(t, cfg, map[string]int64{"svc": 7})
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(blob), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "svc") {
		t.Fatalf("output: %s", out.String())
	}
	// Corrupt input surfaces a wrapped error, not a panic.
	if err := run(nil, bytes.NewReader(blob[:len(blob)-3]), &out); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

// TestServeFlagValidation: -serve refuses positional blob arguments (blobs
// arrive over HTTP in serve mode).
func TestServeFlagValidation(t *testing.T) {
	if err := run([]string{"-serve", "some.bin"}, nil, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no blob arguments") {
		t.Fatalf("serve with args: %v", err)
	}
}
