// Command qlove-agg is the central half of the distributed quantile plane:
// it consumes snapshot blobs exported by worker processes (Engine.Export,
// EngineSnapshot.WriteTo or qlove-bench's distributed workers), groups the
// keyed frames, merges captures of the same key into one logical-window
// view and reports the merged quantile estimates.
//
//	qlove-agg worker-0.bin worker-1.bin worker-2.bin
//	cat exports/*.bin | qlove-agg            # blobs concatenate freely
//	qlove-agg -json -top 10 exports/*.bin    # machine-readable, hottest 10
//	qlove-agg -phi 0.99 exports/*.bin        # one quantile column only
//
// Inputs are read in argument order ("-" or no arguments reads stdin);
// frames for the same key — whether within one blob or across blobs — are
// merged in that order, so a fixed input order yields bit-reproducible
// estimates. Keys whose captures were produced under different operator
// configurations refuse to merge (that is a deployment error, not noise).
//
// With -serve the tool becomes the LONG-RUNNING half of the plane instead
// of a batch fold: an HTTP service (internal/aggsrv) that accepts worker
// pushes — full blobs for bootstrap, Engine.ExportDelta blobs thereafter,
// tombstones for evicted keys — folds them into resident per-worker state
// and answers /query, /snapshot and /healthz from the merged view:
//
//	qlove-agg -serve -addr 127.0.0.1:7171
//	qlove-agg -serve -worker-deadline 5m   # GC workers silent for 5 minutes
//	curl 'http://127.0.0.1:7171/query?key=api/latency&phi=0.99'
//
// -worker-deadline bounds the service under worker churn: a worker that
// stops pushing for that long is dropped from the merged view (like the
// engine's wall-clock key TTL); if it comes back it re-bootstraps.
//
// The service's state plane is configurable: -store picks the backend
// (lock-striped by default; "map" is the single-lock original; "disk" is
// durable), -stripes its stripe count, -instrument wraps it with the
// per-op metrics recorder (see GET /metrics), and -no-fold-cache disables
// the read-path fold cache. -replicas N partitions keys by hash slot
// across N in-process aggregator replicas; -fanin URL,URL,… instead makes
// this process a pure HTTP router over aggregator replicas running
// elsewhere. With either form, -replication R keeps R copies of every
// hash slot: pushes fan out to all R owners, reads prefer the primary and
// fail over to secondaries. Under -fanin, a push succeeds once -quorum
// owners of each slot ack (default: a majority of R), and the router
// resyncs a replica that lost state from its slot co-owners; POST
// /slots/move re-homes one hash slot live (GET /slots shows the table):
//
//	qlove-agg -serve -store striped -instrument -replicas 4
//	qlove-agg -serve -fanin http://10.0.0.1:7171,http://10.0.0.2:7171 -replication 2
//
// With -store disk -dir DIR every fold is appended to a crash-safe log
// under DIR before it is applied, and the NEXT -serve on the same
// directory recovers the full state — per-worker cursors included, so
// workers resume delta pushes without re-bootstrapping, and a kill -9'd
// service answers /snapshot bit-identically to one that never died.
// -fsync picks the sync discipline (always | interval | none).
//
//	qlove-agg -serve -store disk -dir /var/lib/qlove-agg
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/aggsrv"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qlove-agg:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("qlove-agg", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit one JSON document instead of the table")
	top := fs.Int("top", 0, "report only the N keys with the most window elements (0 = all keys, sorted)")
	phi := fs.Float64("phi", 0, "report only this configured quantile (0 = all configured quantiles)")
	serve := fs.Bool("serve", false, "run as a long-running HTTP aggregation service instead of a batch fold")
	addr := fs.String("addr", "127.0.0.1:7171", "serve: listen address")
	deadline := fs.Duration("worker-deadline", 0,
		"serve: drop workers that stop pushing for this long (0 = keep departed workers forever)")
	store := fs.String("store", "striped", "serve: state backend (striped | map | disk)")
	stripes := fs.Int("stripes", 0, "serve: stripe count for the striped backend (0 = default)")
	dir := fs.String("dir", "", "serve: the disk backend's state directory (required with -store disk)")
	fsync := fs.String("fsync", "", "serve: disk backend sync discipline (always | interval | none; default always)")
	instrument := fs.Bool("instrument", false, "serve: record per-op store metrics (GET /metrics)")
	noFoldCache := fs.Bool("no-fold-cache", false, "serve: disable the read-path fold cache")
	replicas := fs.Int("replicas", 1, "serve: partition keys by hash across N in-process aggregator replicas")
	replication := fs.Int("replication", 1,
		"serve: copies of each hash slot, with -replicas or -fanin (1 = no replication)")
	fanin := fs.String("fanin", "",
		"serve: comma-separated replica base URLs; this process routes over them instead of holding state")
	faninTimeout := fs.Duration("fanin-timeout", 0,
		"serve: per-request deadline for fan-in calls to replicas (0 = default 10s)")
	quorum := fs.Int("quorum", 0,
		"serve: replica acks a push needs per slot, with -fanin (0 = majority of -replication)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deadline < 0 {
		return fmt.Errorf("-worker-deadline %v < 0", *deadline)
	}
	if *faninTimeout < 0 {
		return fmt.Errorf("-fanin-timeout %v < 0", *faninTimeout)
	}
	if *serve {
		if len(fs.Args()) != 0 {
			return fmt.Errorf("-serve takes no blob arguments; workers push over HTTP")
		}
		if *replicas < 1 {
			return fmt.Errorf("-replicas %d < 1", *replicas)
		}
		if *replication < 1 {
			return fmt.Errorf("-replication %d < 1", *replication)
		}
		if *fanin != "" {
			if *replicas > 1 {
				return fmt.Errorf("-fanin and -replicas are mutually exclusive (the fan-in holds no state)")
			}
			if *deadline != 0 {
				return fmt.Errorf("-worker-deadline belongs on the replicas, not the fan-in router")
			}
			if *dir != "" || *fsync != "" {
				return fmt.Errorf("-dir/-fsync belong on the replicas, not the fan-in router")
			}
			return serveFanin(*addr, strings.Split(*fanin, ","), *faninTimeout, *replication, *quorum)
		}
		if *faninTimeout != 0 {
			return fmt.Errorf("-fanin-timeout only applies with -fanin")
		}
		if *quorum != 0 {
			return fmt.Errorf("-quorum only applies with -fanin (the in-process partition has no partial failures)")
		}
		if *replication > 1 && *replicas == 1 {
			return fmt.Errorf("-replication %d needs -replicas > 1 or -fanin (one replica cannot hold extra copies)", *replication)
		}
		if *store == "disk" && *dir == "" {
			return fmt.Errorf("-store disk needs -dir (the state directory to log to and recover from)")
		}
		cfg := qlove.AggregatorConfig{
			Store: *store, Stripes: *stripes, Instrument: *instrument, NoFoldCache: *noFoldCache,
			Dir: *dir, Fsync: *fsync,
		}
		return serveHTTP(*addr, *deadline, cfg, *replicas, *replication)
	}
	if *deadline != 0 {
		return fmt.Errorf("-worker-deadline only applies with -serve")
	}
	if *fanin != "" || *replicas != 1 || *replication != 1 || *quorum != 0 || *instrument || *noFoldCache ||
		*stripes != 0 || *store != "striped" || *dir != "" || *fsync != "" || *faninTimeout != 0 {
		return fmt.Errorf("-store/-stripes/-dir/-fsync/-instrument/-no-fold-cache/-replicas/-replication/-quorum/-fanin/-fanin-timeout only apply with -serve")
	}
	agg, err := aggregate(fs.Args(), stdin)
	if err != nil {
		return err
	}
	return report(stdout, agg, *jsonOut, *top, *phi)
}

// aggBackend is the serve-mode state plane: a single Aggregator or an
// in-process Partitioned, both of which GC and serve identically.
type aggBackend interface {
	aggsrv.Backend
	SetPushDeadline(time.Duration, func() time.Time)
	SetPushDeadlineFromStored(time.Duration, func() time.Time)
	Sweep() int
}

// serveHTTP runs the aggregation service until the process is killed.
// With a worker deadline, departed workers are GC'd: reads exclude them
// the moment the deadline passes, and a background ticker sweeps their
// resident state (pushes sweep too, so the ticker only covers the
// all-workers-gone case).
func serveHTTP(addr string, deadline time.Duration, cfg qlove.AggregatorConfig, replicas, replication int) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var agg aggBackend
	if replicas > 1 {
		if agg, err = qlove.NewPartitionedConfig(qlove.PartitionedConfig{
			Replicas: replicas, Replication: replication, Agg: cfg,
		}); err != nil {
			return err
		}
	} else {
		if agg, err = qlove.NewAggregatorConfig(cfg); err != nil {
			return err
		}
	}
	if deadline > 0 {
		if cfg.Store == "disk" {
			// Recovered last-push stamps stay authoritative: a worker that
			// had gone silent before the crash is still the one retired,
			// rather than every worker getting a fresh deadline because the
			// service bounced.
			agg.SetPushDeadlineFromStored(deadline, nil)
		} else {
			agg.SetPushDeadline(deadline, nil)
		}
		go func() {
			for range time.Tick(deadline / 2) {
				agg.Sweep()
			}
		}()
	}
	fmt.Fprintf(os.Stderr, "qlove-agg: serving on http://%s (POST /push?worker=ID, GET /query /snapshot /healthz /metrics)\n", ln.Addr())
	srv := &http.Server{
		Handler: aggsrv.New(agg).Handler(),
		// Header reads are bounded so a half-open connection cannot pin a
		// handler goroutine forever; push bodies stay unbounded in time
		// (a worker on a slow link may legitimately stream for a while —
		// the handler drains them without holding the fold lock).
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.Serve(ln)
}

// serveFanin runs the stateless HTTP router over remote replica servers.
func serveFanin(addr string, urls []string, timeout time.Duration, replication, quorum int) error {
	f, err := aggsrv.NewFaninConfig(aggsrv.FaninConfig{
		Replicas: urls, Timeout: timeout, Replication: replication, Quorum: quorum,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qlove-agg: fan-in on http://%s over %d replicas\n", ln.Addr(), len(urls))
	srv := &http.Server{Handler: f.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(ln)
}

// aggregate folds every input blob into one keyed capture.
func aggregate(paths []string, stdin io.Reader) (qlove.EngineSnapshot, error) {
	var agg qlove.EngineSnapshot
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	for _, path := range paths {
		in := stdin
		name := "stdin"
		var file *os.File
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				return qlove.EngineSnapshot{}, err
			}
			in, file, name = f, f, path
		}
		// Buffered: the decoder reads each ~200-byte frame in two calls,
		// which must not mean two syscalls per frame.
		_, err := agg.ReadFrom(bufio.NewReader(in))
		if file != nil {
			file.Close()
		}
		if err != nil {
			return qlove.EngineSnapshot{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	return agg, nil
}

// keyReport is one merged key's line, shared by the table and -json paths.
type keyReport struct {
	Key        string    `json:"key"`
	Streams    int       `json:"streams"`
	SubWindows int       `json:"sub_windows"`
	Elements   int       `json:"elements"`
	Phis       []float64 `json:"phis"`
	Estimates  []float64 `json:"estimates"`
}

func report(w io.Writer, agg qlove.EngineSnapshot, jsonOut bool, top int, phi float64) error {
	// The cheap shape fields drive the -top selection; estimates — heap
	// merges over every resident summary per key — are computed only for
	// the keys that survive it.
	reports := make([]keyReport, 0, agg.Len())
	for _, k := range agg.Keys() {
		sn, _ := agg.Get(k)
		reports = append(reports, keyReport{
			Key:        k,
			Streams:    sn.Streams(),
			SubWindows: sn.SubWindows(),
			Elements:   sn.Elements(),
		})
	}
	if top > 0 {
		sort.SliceStable(reports, func(i, j int) bool { return reports[i].Elements > reports[j].Elements })
		if top < len(reports) {
			reports = reports[:top]
		}
	}
	for i := range reports {
		r := &reports[i]
		sn, _ := agg.Get(r.Key)
		if phi != 0 {
			// Estimate's interpolation guard: an unconfigured ϕ is an
			// error, not a silently interpolated answer.
			est, ok := sn.Estimate(phi)
			if !ok {
				return fmt.Errorf("key %q: ϕ=%v is not a configured quantile (configured: %v)",
					r.Key, phi, sn.Config().Phis)
			}
			r.Phis = []float64{phi}
			r.Estimates = []float64{est}
		} else {
			r.Phis = sn.Config().Phis
			r.Estimates = sn.Estimates()
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Keys []keyReport `json:"keys"`
		}{reports})
	}
	for _, r := range reports {
		fmt.Fprintf(w, "%-24s streams=%-3d subwindows=%-4d elements=%-8d", r.Key, r.Streams, r.SubWindows, r.Elements)
		for i, p := range r.Phis {
			fmt.Fprintf(w, "  p%g=%.6g", p*100, r.Estimates[i])
		}
		fmt.Fprintln(w)
	}
	if len(reports) == 0 {
		fmt.Fprintln(w, "(no snapshots)")
	}
	return nil
}
