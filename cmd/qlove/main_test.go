package main

import "testing"

func TestParsePhis(t *testing.T) {
	got, err := parsePhis("0.9, 0.5,0.99")
	if err != nil {
		t.Fatal(err)
	}
	// Sorted ascending regardless of input order.
	want := []float64{0.5, 0.9, 0.99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsePhis = %v, want %v", got, want)
		}
	}
}

func TestParsePhisErrors(t *testing.T) {
	for _, in := range []string{"abc", "0", "1.5", "0.5,,0.9"} {
		if _, err := parsePhis(in); err == nil {
			t.Errorf("parsePhis(%q) accepted", in)
		}
	}
}
