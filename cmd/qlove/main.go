// Command qlove computes windowed quantiles over a telemetry stream read
// from a file or stdin (one value per line, or the binary dataset format),
// using any of the repository's policies.
//
// Usage:
//
//	qlove -window 128000 -period 16000 -phis 0.5,0.9,0.99,0.999 \
//	      -policy qlove-fewk [-bounds] [file]
//
// Every window period it prints one line: the evaluation index followed by
// the quantile estimates.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qlove:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("qlove", flag.ContinueOnError)
	windowSize := fs.Int("window", 100000, "window size N (elements)")
	period := fs.Int("period", 10000, "window period P (elements)")
	phisArg := fs.String("phis", "0.5,0.9,0.99,0.999", "comma-separated quantiles")
	policy := fs.String("policy", "qlove", "policy: qlove|qlove-fewk|exact|cmqs|am|random|moment")
	bounds := fs.Bool("bounds", false, "print Appendix-A error bounds after the run (QLOVE only)")
	space := fs.Bool("space", false, "print peak operator space usage after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	phis, err := parsePhis(*phisArg)
	if err != nil {
		return err
	}
	spec := qlove.Window{Size: *windowSize, Period: *period}
	p, err := qlove.Registry().New(*policy, spec, phis)
	if err != nil {
		return err
	}
	var data []float64
	switch fs.NArg() {
	case 0:
		data, err = dataset.ReadText(os.Stdin)
	case 1:
		data, err = dataset.LoadFile(fs.Arg(0))
	default:
		return fmt.Errorf("at most one input file expected")
	}
	if err != nil {
		return err
	}
	mon, err := qlove.NewMonitor(p, spec)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintf(w, "# policy=%s window=%d period=%d phis=%v elements=%d\n",
		p.Name(), spec.Size, spec.Period, phis, len(data))
	peak := 0
	// Batched ingestion: the monitor hands the policy period-aligned
	// ObserveBatch chunks and calls back per evaluation.
	mon.PushBatch(data, func(res qlove.Result) {
		fmt.Fprintf(w, "%d", res.Evaluation)
		for _, e := range res.Estimates {
			fmt.Fprintf(w, "\t%g", e)
		}
		fmt.Fprintln(w)
		if s := p.SpaceUsage(); s > peak {
			peak = s
		}
	})
	if mon.Evaluations() == 0 {
		fmt.Fprintf(w, "# no evaluations: need at least %d elements, got %d\n", spec.Size, len(data))
	}
	if *space {
		fmt.Fprintf(w, "# peak space: %d variables\n", peak)
	}
	if *bounds {
		if q, ok := p.(*qlove.QLOVE); ok {
			fmt.Fprintf(w, "# 95%% error bounds: %v\n", q.ErrorBounds(0.05))
		} else {
			fmt.Fprintf(w, "# error bounds unavailable for policy %s\n", p.Name())
		}
	}
	return nil
}

func parsePhis(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	phis := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad quantile %q: %w", part, err)
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("quantile %v outside (0, 1]", v)
		}
		phis = append(phis, v)
	}
	sort.Float64s(phis)
	return phis, nil
}
