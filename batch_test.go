// Tests for the batched ingestion path: ObserveBatch must be
// observationally identical to element-at-a-time Observe for every
// registered policy, Monitor.PushBatch must match Monitor.Push, and
// steady-state QLOVE ingestion must not touch the heap.
package qlove

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// runElementwise drives a policy through the window protocol one element
// at a time — the pre-batching runner, kept here as the reference the
// batched runner is compared against.
func runElementwise(p Policy, spec Window, data []float64) [][]float64 {
	nEvals := spec.Evaluations(len(data))
	out := make([][]float64, 0, nEvals)
	pos := 0
	for i := 0; i < nEvals; i++ {
		lo, hi := spec.EvalBounds(i)
		if i > 0 {
			p.Expire(data[lo-spec.Period : lo])
		}
		for ; pos < hi; pos++ {
			p.Observe(data[pos])
		}
		out = append(out, p.Result())
	}
	return out
}

// runBatched drives the same protocol through ObserveBatch, deliberately
// slicing each period into misaligned chunks so policies must handle
// batches that span their internal seal boundaries.
func runBatched(p Policy, spec Window, data []float64, chunk int) [][]float64 {
	nEvals := spec.Evaluations(len(data))
	out := make([][]float64, 0, nEvals)
	pos := 0
	for i := 0; i < nEvals; i++ {
		lo, hi := spec.EvalBounds(i)
		if i > 0 {
			p.Expire(data[lo-spec.Period : lo])
		}
		for pos < hi {
			end := pos + chunk
			if end > hi {
				end = hi
			}
			p.ObserveBatch(data[pos:end])
			pos = end
		}
		out = append(out, p.Result())
	}
	return out
}

func TestObserveBatchMatchesObserveAllPolicies(t *testing.T) {
	spec := Window{Size: 2000, Period: 500}
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	data := workload.Generate(workload.NewNetMon(7), 6500)
	reg := Registry()
	for _, name := range []string{"qlove", "qlove-fewk", "exact", "cmqs", "am", "random", "moment", "gk"} {
		t.Run(name, func(t *testing.T) {
			pe, err := reg.New(name, spec, phis)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := reg.New(name, spec, phis)
			if err != nil {
				t.Fatal(err)
			}
			want := runElementwise(pe, spec, data)
			// 137 is coprime to the period, so chunks land on every
			// possible offset within a sub-window.
			got := runBatched(pb, spec, data, 137)
			if len(got) != len(want) {
				t.Fatalf("evaluations: got %d, want %d", len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
						t.Fatalf("eval %d ϕ=%v: batch %v != element %v",
							i, phis[j], got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

func TestObserveBatchQLOVEWithNaNs(t *testing.T) {
	// NaNs must be dropped by both paths without advancing the period.
	spec := Window{Size: 1200, Period: 300}
	phis := []float64{0.5, 0.99}
	data := workload.Generate(workload.NewNetMon(3), 4000)
	for i := 50; i < len(data); i += 97 {
		data[i] = math.NaN()
	}
	pe, err := New(Config{Spec: spec, Phis: phis})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := New(Config{Spec: spec, Phis: phis})
	if err != nil {
		t.Fatal(err)
	}
	want := runElementwise(pe, spec, data)
	got := runBatched(pb, spec, data, 211)
	for i := range want {
		for j := range want[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("eval %d: batch %v != element %v", i, got[i], want[i])
			}
		}
	}
}

func TestPushBatchMatchesPush(t *testing.T) {
	spec := Window{Size: 900, Period: 300}
	phis := []float64{0.5, 0.9, 0.999}
	data := workload.Generate(workload.NewNetMon(11), 5000)
	mk := func() *Monitor {
		p, err := New(Config{Spec: spec, Phis: phis, FewK: true})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMonitor(p, spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := mk()
	var want []Result
	for _, v := range data {
		if res, ok := m1.Push(v); ok {
			want = append(want, res)
		}
	}
	m2 := mk()
	var got []Result
	// Feed in ragged batches (including sizes larger than a period).
	for pos, k := 0, 0; pos < len(data); k++ {
		end := pos + 1 + (k*k)%701
		if end > len(data) {
			end = len(data)
		}
		m2.PushBatch(data[pos:end], func(r Result) { got = append(got, r) })
		pos = end
	}
	if len(got) != len(want) {
		t.Fatalf("results: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Evaluation != want[i].Evaluation {
			t.Fatalf("result %d: evaluation %d != %d", i, got[i].Evaluation, want[i].Evaluation)
		}
		for j := range want[i].Estimates {
			if math.Float64bits(got[i].Estimates[j]) != math.Float64bits(want[i].Estimates[j]) {
				t.Fatalf("result %d ϕ=%v: %v != %v", i, phis[j], got[i].Estimates[j], want[i].Estimates[j])
			}
		}
	}
	if m2.Seen() != m1.Seen() || m2.Evaluations() != m1.Evaluations() {
		t.Fatalf("counters diverge: seen %d/%d evals %d/%d",
			m2.Seen(), m1.Seen(), m2.Evaluations(), m1.Evaluations())
	}
}

func TestPushBatchNilEmit(t *testing.T) {
	spec := Window{Size: 100, Period: 50}
	p, _ := New(Config{Spec: spec, Phis: []float64{0.5}})
	m, _ := NewMonitor(p, spec)
	m.PushBatch(workload.Generate(workload.NewNetMon(1), 500), nil)
	if m.Evaluations() != 9 {
		t.Fatalf("evaluations = %d, want 9", m.Evaluations())
	}
}

// steadyQLOVE returns a QLOVE policy warmed past its first windows so the
// tree arena, Level-2 ring and all scratch buffers have reached their
// working-set sizes. Values cycle over a fixed set, mirroring the bounded
// unique-value population §3.1 quantization produces.
func steadyQLOVE(t testing.TB, spec Window) (*QLOVE, []float64) {
	t.Helper()
	p, err := New(Config{Spec: spec, Phis: []float64{0.5, 0.9, 0.99, 0.999}})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = 100 + float64(i)
	}
	warm := make([]float64, 3*spec.Size)
	for i := range warm {
		warm[i] = vals[i%len(vals)]
	}
	if _, err := Feed(p, spec, warm); err != nil {
		t.Fatal(err)
	}
	return p, vals
}

func TestObserveSteadyStateZeroAllocs(t *testing.T) {
	spec := Window{Size: 8192, Period: 8192}
	p, vals := steadyQLOVE(t, spec)
	i := 0
	// 100 measured runs (plus AllocsPerRun's warm-up call) stay far below
	// the period, so no seal happens inside the measurement.
	allocs := testing.AllocsPerRun(100, func() {
		p.Observe(vals[i%len(vals)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe allocates %v per element, want 0", allocs)
	}
}

func TestObserveBatchSteadyStateZeroAllocs(t *testing.T) {
	spec := Window{Size: 8192, Period: 8192}
	p, vals := steadyQLOVE(t, spec)
	batch := make([]float64, 64)
	for i := range batch {
		batch[i] = vals[(i*7)%len(vals)]
	}
	allocs := testing.AllocsPerRun(50, func() {
		p.ObserveBatch(batch)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveBatch allocates %v per batch, want 0", allocs)
	}
}

func TestSealSteadyStateIsArenaRecycled(t *testing.T) {
	// Across many full periods the only steady-state allocations are the
	// retained Summary slices — the tree arena and every scratch buffer
	// must be recycled. Budget: well under one allocation per element.
	spec := Window{Size: 1024, Period: 256}
	p, vals := steadyQLOVE(t, spec)
	period := make([]float64, spec.Period)
	for i := range period {
		period[i] = vals[(i*13)%len(vals)]
	}
	perPeriod := testing.AllocsPerRun(40, func() {
		p.Expire(nil)
		p.ObserveBatch(period)
		_ = p.Result()
	})
	if perElement := perPeriod / float64(spec.Period); perElement > 0.1 {
		t.Fatalf("steady-state seal+evaluate costs %v allocs/element, want < 0.1", perElement)
	}
}
