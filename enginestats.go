package qlove

import (
	"sync/atomic"
	"time"
)

// Backpressure selects the Engine's overload response when evaluation
// consumers or shard queues fall behind ingestion.
type Backpressure int

const (
	// BackpressureDrop is the default: the results fan-in never blocks a
	// shard. When the Results consumer falls behind the buffer, the newest
	// evaluations are discarded and counted (ShardStats.EvalsDropped,
	// Engine.Dropped) — a monitoring dashboard that has already missed the
	// oldest pending results prefers fresh ingestion over stale delivery.
	// Ingestion itself is lossless either way: Push blocks on a full shard
	// queue, it never drops a batch.
	BackpressureDrop Backpressure = iota
	// BackpressureBlock makes delivery lossless: a shard with a full
	// Results channel blocks until the consumer drains it, the shard's
	// queue then fills, and Push blocks in turn — backpressure propagates
	// to the producers instead of silently shedding evaluations. Operator
	// state is IDENTICAL in both modes for the same accepted batches (drops
	// only ever affect delivery, never ingestion), so snapshots and exports
	// are bit-for-bit the same; only the delivery guarantee changes.
	//
	// Contract: the consumer must keep draining Results until it closes —
	// including while Close runs — or producers and Close wedge behind the
	// full channel. Use PushContext to bound an individual producer's wait.
	BackpressureBlock
)

// String names the mode ("drop" / "block").
func (b Backpressure) String() string {
	if b == BackpressureBlock {
		return "block"
	}
	return "drop"
}

// shardCounters is one shard's lock-free stats plane: producers and the
// shard goroutine update atomics, Stats() reads them without touching the
// engine mutex or the shard queues, so overload is observable even from a
// process that is itself wedged behind backpressure.
type shardCounters struct {
	enqueued       atomic.Uint64 // batches accepted onto the shard queue
	delivered      atomic.Uint64 // batches delivered into operators
	failed         atomic.Uint64 // batches discarded: per-key policy construction failed
	evalsDelivered atomic.Uint64 // evaluations handed to the Results consumer
	evalsDropped   atomic.Uint64 // evaluations shed at the fan-in (drop mode only)
	blockedNanos   atomic.Uint64 // producer + delivery time spent blocked on full queues
	queueHighWater atomic.Int64  // deepest observed shard-queue backlog, in batches
	resident       atomic.Int64  // keys (salted sub-streams) currently resident
}

// noteDepth raises the queue high-water mark to n if it exceeds the mark.
func (c *shardCounters) noteDepth(n int) {
	for {
		cur := c.queueHighWater.Load()
		if int64(n) <= cur || c.queueHighWater.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// snapshot copies the counters into an exported view.
func (c *shardCounters) snapshot() ShardStats {
	return ShardStats{
		EnqueuedBatches:  c.enqueued.Load(),
		DeliveredBatches: c.delivered.Load(),
		FailedBatches:    c.failed.Load(),
		EvalsDelivered:   c.evalsDelivered.Load(),
		EvalsDropped:     c.evalsDropped.Load(),
		Blocked:          time.Duration(c.blockedNanos.Load()),
		QueueHighWater:   int(c.queueHighWater.Load()),
		ResidentKeys:     int(c.resident.Load()),
	}
}

// ShardStats is a point-in-time copy of one shard's counters. Loss has two
// distinct sides, counted separately:
//
//   - Ingest-side: Push never loses a batch (it blocks on a full queue) and
//     PushContext surfaces abandonment as an error to the caller; the only
//     ingest loss is FailedBatches — batches discarded because a custom
//     factory failed to mint the key's policy (see Engine.Err).
//   - Delivery-side: EvalsDropped counts evaluations shed at the Results
//     fan-in under BackpressureDrop; it is zero under BackpressureBlock.
type ShardStats struct {
	// EnqueuedBatches counts batches producers placed on the shard queue.
	EnqueuedBatches uint64
	// DeliveredBatches counts batches the shard delivered into operators.
	// After Close, EnqueuedBatches == DeliveredBatches + FailedBatches.
	DeliveredBatches uint64
	// FailedBatches counts batches discarded for want of a policy
	// (custom-factory construction failure; the built-in path cannot fail).
	FailedBatches uint64
	// EvalsDelivered counts evaluations handed to the Results consumer.
	EvalsDelivered uint64
	// EvalsDropped counts evaluations shed at the fan-in (drop mode only).
	EvalsDropped uint64
	// Blocked accumulates time spent stalled on full channels: producers
	// blocked on this shard's queue plus (in blocking mode) the shard
	// blocked on the Results channel. The direct signal that the engine —
	// not the harness — is the bottleneck.
	Blocked time.Duration
	// QueueHighWater is the deepest shard-queue backlog observed, in
	// batches; a mark pinned at the queue capacity means producers waited.
	QueueHighWater int
	// ResidentKeys is the number of keys currently resident on the shard
	// (salted sub-streams count individually; see EngineConfig.RouteSalt).
	ResidentKeys int
}

// EngineStats is the engine-wide capture Engine.Stats returns: one entry
// per shard, in shard order.
type EngineStats struct {
	Shards []ShardStats
}

// Total folds every shard's counters into one (QueueHighWater is the max
// across shards, the rest sum).
func (st EngineStats) Total() ShardStats {
	var t ShardStats
	for _, s := range st.Shards {
		t.EnqueuedBatches += s.EnqueuedBatches
		t.DeliveredBatches += s.DeliveredBatches
		t.FailedBatches += s.FailedBatches
		t.EvalsDelivered += s.EvalsDelivered
		t.EvalsDropped += s.EvalsDropped
		t.Blocked += s.Blocked
		if s.QueueHighWater > t.QueueHighWater {
			t.QueueHighWater = s.QueueHighWater
		}
		t.ResidentKeys += s.ResidentKeys
	}
	return t
}

// Skew measures load imbalance: the hottest shard's delivered-batch count
// over the per-shard mean (1 = perfectly balanced, len(Shards) = one shard
// took everything). Zero deliveries report 1.
func (st EngineStats) Skew() float64 {
	if len(st.Shards) == 0 {
		return 1
	}
	var max, sum uint64
	for _, s := range st.Shards {
		sum += s.DeliveredBatches
		if s.DeliveredBatches > max {
			max = s.DeliveredBatches
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(st.Shards)) / float64(sum)
}

// HotShards returns the indices of shards whose delivered-batch count
// exceeds factor times the per-shard mean — the hot-shard detector a
// router or operator consults to decide when a key storm needs salting
// (factor 2 flags a shard carrying twice its fair share).
func (st EngineStats) HotShards(factor float64) []int {
	var sum uint64
	for _, s := range st.Shards {
		sum += s.DeliveredBatches
	}
	if sum == 0 || len(st.Shards) == 0 {
		return nil
	}
	mean := float64(sum) / float64(len(st.Shards))
	var hot []int
	for i, s := range st.Shards {
		if float64(s.DeliveredBatches) > factor*mean {
			hot = append(hot, i)
		}
	}
	return hot
}

// Stats captures every shard's counters. It is lock-free — it reads only
// atomics, never the engine mutex or the shard queues — so it stays
// responsive while producers are blocked on backpressure, and is safe to
// poll from any goroutine at any rate, before and after Close.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{Shards: make([]ShardStats, len(e.shards))}
	for i, s := range e.shards {
		st.Shards[i] = s.counters.snapshot()
	}
	return st
}

// saltSep separates a logical key from its routing-salt index in the
// internal per-shard key space. Keys containing a NUL byte in their last
// two positions are reserved when RouteSalt is enabled.
const saltSep = '\x00'

// saltedKey derives sub-stream j's internal key name.
func saltedKey(key string, j byte) string {
	return key + string([]byte{saltSep, j})
}

// baseKey strips the salt suffix from an internal key name (identity when
// salting is off).
func (e *Engine) baseKey(k string) string {
	if e.salt > 1 && len(k) >= 2 && k[len(k)-2] == saltSep {
		return k[:len(k)-2]
	}
	return k
}
