package qlove

import (
	"sync/atomic"
	"time"
)

// Backpressure selects the Engine's overload response when evaluation
// consumers or shard queues fall behind ingestion.
type Backpressure int

const (
	// BackpressureDrop is the default: the results fan-in never blocks a
	// shard. When the Results consumer falls behind the buffer, the newest
	// evaluations are discarded and counted (ShardStats.EvalsDropped,
	// Engine.Dropped) — a monitoring dashboard that has already missed the
	// oldest pending results prefers fresh ingestion over stale delivery.
	// Ingestion itself is lossless either way: Push blocks on a full shard
	// queue, it never drops a batch.
	BackpressureDrop Backpressure = iota
	// BackpressureBlock makes delivery lossless: a shard with a full
	// Results channel blocks until the consumer drains it, the shard's
	// queue then fills, and Push blocks in turn — backpressure propagates
	// to the producers instead of silently shedding evaluations. Operator
	// state is IDENTICAL in both modes for the same accepted batches (drops
	// only ever affect delivery, never ingestion), so snapshots and exports
	// are bit-for-bit the same; only the delivery guarantee changes.
	//
	// Contract: the consumer must keep draining Results until it closes —
	// including while Close runs — or producers and Close wedge behind the
	// full channel. Use PushContext to bound an individual producer's wait.
	BackpressureBlock
)

// String names the mode ("drop" / "block").
func (b Backpressure) String() string {
	if b == BackpressureBlock {
		return "block"
	}
	return "drop"
}

// shardCounters is one shard's lock-free stats plane: producers and the
// shard goroutine update atomics, Stats() reads them without touching the
// engine mutex or the shard queues, so overload is observable even from a
// process that is itself wedged behind backpressure.
type shardCounters struct {
	enqueued       atomic.Uint64 // batches accepted onto the shard queue
	delivered      atomic.Uint64 // batches delivered into operators
	failed         atomic.Uint64 // batches discarded: per-key policy construction failed
	evalsDelivered atomic.Uint64 // evaluations handed to the Results consumer
	evalsDropped   atomic.Uint64 // evaluations shed at the fan-in (drop mode only)
	blockedNanos   atomic.Uint64 // producer + delivery time spent blocked on full queues
	queueHighWater atomic.Int64  // deepest observed shard-queue backlog, in batches
	resident       atomic.Int64  // keys (salted sub-streams) currently resident
}

// noteDepth raises the queue high-water mark to n if it exceeds the mark.
func (c *shardCounters) noteDepth(n int) {
	for {
		cur := c.queueHighWater.Load()
		if int64(n) <= cur || c.queueHighWater.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// snapshot copies the counters into an exported view.
func (c *shardCounters) snapshot() ShardStats {
	return ShardStats{
		EnqueuedBatches:  c.enqueued.Load(),
		DeliveredBatches: c.delivered.Load(),
		FailedBatches:    c.failed.Load(),
		EvalsDelivered:   c.evalsDelivered.Load(),
		EvalsDropped:     c.evalsDropped.Load(),
		Blocked:          time.Duration(c.blockedNanos.Load()),
		QueueHighWater:   int(c.queueHighWater.Load()),
		ResidentKeys:     int(c.resident.Load()),
	}
}

// ShardStats is a point-in-time copy of one shard's counters. Loss has two
// distinct sides, counted separately:
//
//   - Ingest-side: Push never loses a batch (it blocks on a full queue) and
//     PushContext surfaces abandonment as an error to the caller; the only
//     ingest loss is FailedBatches — batches discarded because a custom
//     factory failed to mint the key's policy (see Engine.Err).
//   - Delivery-side: EvalsDropped counts evaluations shed at the Results
//     fan-in under BackpressureDrop; it is zero under BackpressureBlock.
type ShardStats struct {
	// EnqueuedBatches counts batches producers placed on the shard queue.
	EnqueuedBatches uint64
	// DeliveredBatches counts batches the shard delivered into operators.
	// After Close, EnqueuedBatches == DeliveredBatches + FailedBatches.
	DeliveredBatches uint64
	// FailedBatches counts batches discarded for want of a policy
	// (custom-factory construction failure; the built-in path cannot fail).
	FailedBatches uint64
	// EvalsDelivered counts evaluations handed to the Results consumer.
	EvalsDelivered uint64
	// EvalsDropped counts evaluations shed at the fan-in (drop mode only).
	EvalsDropped uint64
	// Blocked accumulates time spent stalled on full channels: producers
	// blocked on this shard's queue plus (in blocking mode) the shard
	// blocked on the Results channel. The direct signal that the engine —
	// not the harness — is the bottleneck.
	Blocked time.Duration
	// QueueHighWater is the deepest shard-queue backlog observed, in
	// batches; a mark pinned at the queue capacity means producers waited.
	QueueHighWater int
	// ResidentKeys is the number of keys currently resident on the shard
	// (salted sub-streams count individually; see EngineConfig.RouteSalt).
	ResidentKeys int
}

// EngineStats is the engine-wide capture Engine.Stats returns: one entry
// per shard, in shard order.
type EngineStats struct {
	Shards []ShardStats
}

// Total folds every shard's counters into one (QueueHighWater is the max
// across shards, the rest sum).
func (st EngineStats) Total() ShardStats {
	var t ShardStats
	for _, s := range st.Shards {
		t.EnqueuedBatches += s.EnqueuedBatches
		t.DeliveredBatches += s.DeliveredBatches
		t.FailedBatches += s.FailedBatches
		t.EvalsDelivered += s.EvalsDelivered
		t.EvalsDropped += s.EvalsDropped
		t.Blocked += s.Blocked
		if s.QueueHighWater > t.QueueHighWater {
			t.QueueHighWater = s.QueueHighWater
		}
		t.ResidentKeys += s.ResidentKeys
	}
	return t
}

// Skew measures load imbalance: the hottest shard's delivered-batch count
// over the per-shard mean (1 = perfectly balanced, len(Shards) = one shard
// took everything). Zero deliveries report 1.
func (st EngineStats) Skew() float64 {
	if len(st.Shards) == 0 {
		return 1
	}
	var max, sum uint64
	for _, s := range st.Shards {
		sum += s.DeliveredBatches
		if s.DeliveredBatches > max {
			max = s.DeliveredBatches
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(st.Shards)) / float64(sum)
}

// HotShards returns the indices of shards whose delivered-batch count
// exceeds factor times the per-shard mean — the hot-shard detector a
// router or operator (or the engine's own adaptive controller) consults to
// decide when a key storm needs salting (factor 2 flags a shard carrying
// twice its fair share).
//
// The factor is relative to the MEAN, so the degenerate shard counts have
// pinned semantics rather than accidental ones:
//
//   - 1 shard: always nil. The only shard is by definition at the mean;
//     flagging it would make every single-shard engine permanently "hot"
//     at any factor below 1.
//   - 2 shards: a shard can carry at most 2× the mean (all the traffic),
//     so factors ≥ 2 can never flag anything — the comparison is strictly
//     greater-than. Detectors that want "one of two shards is doing almost
//     everything" must use a factor in (1, 2), e.g. 1.5.
func (st EngineStats) HotShards(factor float64) []int {
	if len(st.Shards) < 2 {
		return nil
	}
	var sum uint64
	for _, s := range st.Shards {
		sum += s.DeliveredBatches
	}
	if sum == 0 {
		return nil
	}
	mean := float64(sum) / float64(len(st.Shards))
	var hot []int
	for i, s := range st.Shards {
		if float64(s.DeliveredBatches) > factor*mean {
			hot = append(hot, i)
		}
	}
	return hot
}

// Stats captures every shard's counters. It is lock-free — it reads only
// atomics, never the engine mutex or the shard queues — so it stays
// responsive while producers are blocked on backpressure, and is safe to
// poll from any goroutine at any rate, before and after Close.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{Shards: make([]ShardStats, len(e.shards))}
	for i, s := range e.shards {
		st.Shards[i] = s.counters.snapshot()
	}
	return st
}

// saltSep separates a logical key from its routing-salt index in the
// internal per-shard key space. The NUL byte is reserved: Push rejects any
// key containing it, so the internal sub-stream namespace ("key\x00<j>")
// can never collide with a user key and splitKey stays purely syntactic.
const saltSep = '\x00'

// saltedKey derives sub-stream j's internal key name.
func saltedKey(key string, j byte) string {
	return key + string([]byte{saltSep, j})
}

// splitKey decomposes an internal key name. For a salted sub-stream name
// it returns (base key, salt index, true); for a plain key it returns
// (name, 0, false). Because user keys can never contain NUL, the check is
// syntactic and needs no engine configuration — it works identically for
// engine-wide RouteSalt names and per-key adaptive escalation names.
func splitKey(name string) (base string, sub byte, salted bool) {
	if len(name) >= 2 && name[len(name)-2] == saltSep {
		return name[:len(name)-2], name[len(name)-1], true
	}
	return name, 0, false
}

// logicalKey strips the salt suffix from an internal key name (identity
// for plain keys).
func logicalKey(name string) string {
	base, _, _ := splitKey(name)
	return base
}

// KeyLoad attributes recent delivery load to one resident internal key
// name on one shard — the per-key refinement of ShardStats that lets the
// adaptive controller name the offending key instead of just the shard.
// Batches counts deliveries since the previous sample (sampling resets
// the per-key attribution counter; the cumulative count stays in
// ShardStats.DeliveredBatches).
type KeyLoad struct {
	// Key is the internal key name (a salted sub-stream name for escalated
	// or RouteSalt keys; use logicalKey to group).
	Key string
	// Batches is the number of batches delivered into the key's operator
	// since the shard was last sampled.
	Batches uint64
}
