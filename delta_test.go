package qlove

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestExportDeltaStress is the concurrency gate of the delta plane: one
// engine under simultaneous Push, ExportDelta, Snapshot, ImportSnapshots
// and TTL eviction (run it with -race). Afterwards the cursor-folded
// aggregator state must equal a fresh full export exactly — same key set
// in both directions (no lost tombstones, no resurrected keys) and
// bit-identical estimates.
func TestExportDeltaStress(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	eng, err := NewEngine(EngineConfig{
		Config:       cfg,
		Shards:       4,
		KeyTTL:       48, // churn keys expire mid-run, exercising tombstones
		ResultBuffer: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)

	// A remote blob for the concurrent ImportSnapshots reader.
	remote, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	remoteDone := drainResults(remote)
	if err := remote.Push("hot-0", workload.Generate(workload.NewNetMon(77), 512)); err != nil {
		t.Fatal(err)
	}
	remote.Close()
	<-remoteDone
	var remoteBlob bytes.Buffer
	if _, err := remote.Export(&remoteBlob); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Pushers: a stable hot set plus a churning tail the TTL sweep evicts.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			gen := workload.NewNetMon(int64(1000 + p))
			for i := 0; !stop.Load(); i++ {
				var key string
				if rng.Intn(3) > 0 {
					key = fmt.Sprintf("hot-%d", rng.Intn(8))
				} else {
					key = fmt.Sprintf("churn-%d-%d", p, i%97)
				}
				if err := eng.Push(key, workload.Generate(gen, 32)); err != nil {
					return // engine closed under us: the run is over
				}
			}
		}(p)
	}

	// Exporter: delta exports folded into the service-style aggregator,
	// concurrent with everything else.
	agg := NewAggregator()
	var cur ExportCursor
	var exports int
	var exportErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			var buf bytes.Buffer
			if _, err := eng.ExportDelta(&buf, &cur); err != nil {
				exportErr = fmt.Errorf("export %d: %w", exports, err)
				return
			}
			if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
				exportErr = fmt.Errorf("apply %d: %w", exports, err)
				return
			}
			exports++
		}
	}()

	// Reader: full snapshots, imports and point queries ride alongside.
	var readErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = eng.Snapshot()
			if _, err := eng.ImportSnapshots(bytes.NewReader(remoteBlob.Bytes())); err != nil {
				readErr = fmt.Errorf("import: %w", err)
				return
			}
			eng.Query("hot-3")
			eng.Keys()
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if exportErr != nil {
		t.Fatal(exportErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	eng.Close()
	<-done

	// Final flush over the closed engine, then the identity check.
	var buf bytes.Buffer
	if _, err := eng.ExportDelta(&buf, &cur); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if exports == 0 {
		t.Fatal("exporter never ran")
	}
	t.Logf("stress: %d concurrent delta exports, final state %d keys", exports, agg.Keys())
	requireSameView(t, agg, eng)
}

// fakeClock is a concurrency-safe controllable clock for wall-TTL tests.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }
func newFakeClock(start time.Time) *fakeClock {
	c := &fakeClock{}
	c.ns.Store(start.UnixNano())
	return c
}

// TestWallClockTTLDeterministic: with a fake clock and one shard, a key
// idle past KeyTTLDuration is evicted by the delivery-piggybacked sweep at
// an exactly predictable point, and the eviction surfaces as a delta-export
// tombstone.
func TestWallClockTTLDeterministic(t *testing.T) {
	clk := newFakeClock(time.Unix(1_000_000, 0))
	eng, err := NewEngine(EngineConfig{
		Config:         Config{Spec: Window{Size: 128, Period: 64}, Phis: []float64{0.5}},
		Shards:         1, // one shard: every key shares the sweep clock
		KeyTTLDuration: time.Minute,
		Clock:          clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	defer func() { eng.Close(); <-done }()

	gen := workload.NewNetMon(5)
	if err := eng.Push("idle", workload.Generate(gen, 128)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Push("busy", workload.Generate(gen, 128)); err != nil {
		t.Fatal(err)
	}
	// Prime a cursor that has seen both keys.
	agg := NewAggregator()
	var cur ExportCursor
	syncAgg := func() {
		t.Helper()
		var buf bytes.Buffer
		if _, err := eng.ExportDelta(&buf, &cur); err != nil {
			t.Fatal(err)
		}
		if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
	}
	syncAgg()
	if agg.Keys() != 2 {
		t.Fatalf("aggregated %d keys, want 2", agg.Keys())
	}

	// Advance past the TTL; the next delivery (to busy) piggybacks the
	// overdue sweep, evicting idle but not the just-delivered busy.
	clk.advance(2 * time.Minute)
	if err := eng.Push("busy", workload.Generate(gen, 64)); err != nil {
		t.Fatal(err)
	}
	if got := eng.Keys(); got != 1 {
		t.Fatalf("after wall sweep: %d keys, want 1", got)
	}
	if _, ok := eng.Query("idle"); ok {
		t.Fatal("idle key survived the wall-clock TTL")
	}
	if _, ok := eng.Query("busy"); !ok {
		t.Fatal("busy key was evicted")
	}
	// The eviction reaches the aggregator as a tombstone.
	syncAgg()
	if agg.Keys() != 1 {
		t.Fatalf("aggregator holds %d keys after tombstone, want 1", agg.Keys())
	}
	if _, ok, _ := agg.Query("idle"); ok {
		t.Fatal("tombstone for idle key was lost")
	}
	requireSameView(t, agg, eng)
}

// TestWallClockTTLQuietShard: the ticker path — a key on a shard receiving
// NO further deliveries is still evicted (bounded wait on a real clock).
func TestWallClockTTLQuietShard(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Config:         Config{Spec: Window{Size: 128, Period: 64}, Phis: []float64{0.5}},
		Shards:         2,
		KeyTTLDuration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	defer func() { eng.Close(); <-done }()
	if err := eng.Push("quiet", workload.Generate(workload.NewNetMon(6), 128)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Keys() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("quiet-shard key not evicted after 5s (keys=%d)", eng.Keys())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExportDeltaRecreation: an evict-then-recreate between two exports
// must reach the destination as tombstone + bootstrap — even when the new
// incarnation has sealed MORE generations than the cursor recorded (the
// case a naive generation comparison would silently corrupt).
func TestExportDeltaRecreation(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Config: Config{Spec: Window{Size: 128, Period: 64}, Phis: []float64{0.5, 0.99}},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	defer func() { eng.Close(); <-done }()

	gen := workload.NewNetMon(3)
	if err := eng.Push("k", workload.Generate(gen, 128)); err != nil { // 2 seals
		t.Fatal(err)
	}
	agg := NewAggregator()
	var cur ExportCursor
	var buf bytes.Buffer
	if _, err := eng.ExportDelta(&buf, &cur); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if !eng.Evict("k") {
		t.Fatal("evict")
	}
	// The new incarnation seals PAST the cursor's generation.
	if err := eng.Push("k", workload.Generate(gen, 512)); err != nil { // 8 seals > 2
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := eng.ExportDelta(&buf, &cur); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	requireSameView(t, agg, eng)
}
