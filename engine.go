package qlove

import (
	"fmt"
	"hash/maphash"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/wire"
)

// Engine is the keyed, sharded, concurrent form of the monitoring API: it
// maintains one sliding-window quantile operator per metric key (a
// service, a pod, a route) and scales ingestion across shards, each shard
// a single-writer goroutine owning its slice of the key space. This is the
// deployment shape of datacenter telemetry (§1 of the paper): not one
// stream, but millions of keyed series monitored simultaneously.
//
// Architecture:
//
//   - Keys are hash-partitioned across Shards goroutines. Each shard owns
//     a map[key]*Pusher — the same per-stream state machine Monitor wraps
//     — and is the ONLY goroutine that touches those operators, so the
//     hot path needs no locks and no atomic traffic.
//   - Push(key, vs) copies the batch into a recycled buffer and enqueues
//     it on the owning shard's MPSC channel; the shard delivers it through
//     the operator's period-aligned ObserveBatch path, preserving the
//     zero-allocation batched ingestion path end to end. Per-key element
//     order is the order of Push calls (concurrent pushers to the SAME key
//     interleave at batch granularity).
//   - Evaluations fan in on a single buffered Results channel. Delivery
//     never blocks ingestion: when the consumer falls behind, the oldest
//     pending results are the ones a monitoring dashboard has already
//     missed, so new evaluations are dropped and counted (Dropped) rather
//     than stalling every shard.
//   - Snapshot and Query serve reads WITHOUT stopping ingestion: the
//     request rides the shard's own queue (so it is ordered with respect
//     to ingest on every key) and the shard hands back immutable Snapshot
//     captures that are safe to read, retain and Merge from any goroutine.
//
// Engines built from a Config (the default) mint QLOVE operators from a
// per-shard core.Pool, so evicted keys recycle their arena-backed trees
// instead of feeding the garbage collector. Engines built from a custom
// Factory monitor any Policy; Snapshot/Query then cover the keys whose
// policies implement Snapshotter.
type Engine struct {
	spec    Window
	shards  []*engineShard
	results chan KeyedResult
	dropped atomic.Uint64
	failed  atomic.Uint64
	lastErr atomic.Value // engineErr; atomic.Value needs one concrete type
	seed    maphash.Seed
	bufs    sync.Pool // *[]float64 ingest buffers
	wg      sync.WaitGroup

	mu     sync.RWMutex // guards closed; held shared by every public op
	closed bool
}

// KeyedResult is one evaluation produced by the Engine for one key.
type KeyedResult struct {
	// Key is the metric key the evaluation belongs to.
	Key string
	Result
}

// EngineConfig parameterizes an Engine.
type EngineConfig struct {
	// Config parameterizes the QLOVE operator minted for each key — the
	// default path, with per-shard operator pooling and snapshot support.
	// Ignored when Factory is set.
	Config Config
	// Factory, when non-nil, overrides Config: each new key gets a fresh
	// policy from it (e.g. Registry().Bind("cmqs", spec, phis)). Spec must
	// then carry the window spec the factory's policies were bound to.
	Factory BoundFactory
	// Spec is the window spec for Factory-built engines. With Config it
	// must be zero or equal to Config.Spec.
	Spec Window
	// Shards is the number of ingest goroutines (and key partitions).
	// Defaults to runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth is the per-shard ingest queue capacity in batches.
	// Default 128.
	QueueDepth int
	// ResultBuffer is the capacity of the fan-in Results channel. Default
	// 1024.
	ResultBuffer int
	// KeyTTL, when positive, expires idle keys: a key that has received no
	// batch for more than KeyTTL batch deliveries on its owning shard is
	// evicted by a periodic sweep, its operator recycled through the
	// shard's pool exactly as an explicit Evict would. The clock is
	// pushes-since-last-seen, not wall time, so an idle fleet costs
	// nothing and a busy shard reclaims churned keys in bounded memory —
	// and exported blobs stay bounded under key churn. The sweep runs
	// every ⌈KeyTTL/2⌉ deliveries (each sweep is O(keys in shard)), so an
	// idle key survives at most ~1.5×KeyTTL deliveries past its last
	// batch. 0 disables expiry.
	KeyTTL int
}

// ErrEngineClosed is returned by Push after Close.
var ErrEngineClosed = fmt.Errorf("qlove: engine closed")

const (
	defaultQueueDepth   = 128
	defaultResultBuffer = 1024
	defaultBatchCap     = 256
)

type engineShard struct {
	eng     *Engine
	in      chan engineMsg
	keys    map[string]*keyEntry
	pool    *core.Pool   // non-nil on the Config path
	factory BoundFactory // non-nil on the Factory path

	// Idle-key expiry (KeyTTL > 0): clock counts batch deliveries to this
	// shard; a key whose lastSeen lags by more than ttl is evicted by the
	// next sweep at nextSweep.
	ttl       uint64
	clock     uint64
	nextSweep uint64
}

type keyEntry struct {
	pusher   *stream.Pusher
	snap     Snapshotter // non-nil when the policy supports snapshots
	emit     func(stream.Evaluation)
	lastSeen uint64 // shard clock at this key's most recent batch
}

// engineMsg is one unit of shard work: either an ingest batch or a control
// request (both ride the same queue, so reads are ordered with ingest).
type engineMsg struct {
	key string
	buf *[]float64
	ctl *engineCtl
}

type ctlOp int

const (
	ctlSnapshot ctlOp = iota
	ctlQuery
	ctlEvict
	ctlCount
)

type engineCtl struct {
	op   ctlOp
	key  string
	resp chan engineCtlResp
}

type engineCtlResp struct {
	snaps map[string]Snapshot
	snap  Snapshot
	ok    bool
	n     int
}

// NewEngine builds and starts an engine; callers must Close it to release
// the shard goroutines.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	resBuf := cfg.ResultBuffer
	if resBuf <= 0 {
		resBuf = defaultResultBuffer
	}
	spec := cfg.Spec
	var mkPool func() (*core.Pool, error)
	if cfg.Factory == nil {
		if spec != (Window{}) && spec != cfg.Config.Spec {
			return nil, fmt.Errorf("qlove: engine Spec %v conflicts with Config.Spec %v", spec, cfg.Config.Spec)
		}
		spec = cfg.Config.Spec
		mkPool = func() (*core.Pool, error) { return core.NewPool(cfg.Config) }
	} else {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("qlove: engine with custom factory: %w", err)
		}
		// Probe the factory once so configuration errors surface at
		// construction, not on the first pushed key.
		p, err := cfg.Factory()
		if err != nil {
			return nil, fmt.Errorf("qlove: engine factory: %w", err)
		}
		if p == nil {
			return nil, fmt.Errorf("qlove: engine factory returned nil policy")
		}
	}
	e := &Engine{
		spec:    spec,
		results: make(chan KeyedResult, resBuf),
		seed:    maphash.MakeSeed(),
	}
	e.bufs.New = func() any {
		b := make([]float64, 0, defaultBatchCap)
		return &b
	}
	if cfg.KeyTTL < 0 {
		return nil, fmt.Errorf("qlove: engine KeyTTL %d < 0", cfg.KeyTTL)
	}
	e.shards = make([]*engineShard, shards)
	for i := range e.shards {
		s := &engineShard{
			eng:     e,
			in:      make(chan engineMsg, depth),
			keys:    make(map[string]*keyEntry),
			factory: cfg.Factory,
			ttl:     uint64(cfg.KeyTTL),
		}
		if s.ttl > 0 {
			s.nextSweep = sweepInterval(s.ttl)
		}
		if mkPool != nil {
			pool, err := mkPool()
			if err != nil {
				return nil, err
			}
			s.pool = pool
		}
		e.shards[i] = s
	}
	e.wg.Add(shards)
	for _, s := range e.shards {
		go func(s *engineShard) {
			defer e.wg.Done()
			s.run()
		}(s)
	}
	return e, nil
}

// shardOf hash-partitions a key.
func (e *Engine) shardOf(key string) *engineShard {
	return e.shards[maphash.String(e.seed, key)%uint64(len(e.shards))]
}

// Push feeds a batch of elements for one key. The values are copied before
// Push returns, so the caller may reuse vs immediately. Push blocks only
// when the owning shard's queue is full (backpressure), never on result
// delivery. Safe for any number of concurrent callers.
func (e *Engine) Push(key string, vs []float64) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		// Checked before the empty fast-path so producers using Push's
		// error as their shutdown signal see closure on empty reports too.
		return ErrEngineClosed
	}
	if len(vs) == 0 {
		return nil
	}
	bp := e.bufs.Get().(*[]float64)
	*bp = append((*bp)[:0], vs...)
	e.shardOf(key).in <- engineMsg{key: key, buf: bp}
	return nil
}

// Results returns the evaluation fan-in channel. It closes after Close has
// drained every shard. Evaluations for one key arrive in order; ordering
// across keys is not defined.
func (e *Engine) Results() <-chan KeyedResult { return e.results }

// Dropped returns how many evaluations were discarded because the Results
// consumer fell behind the buffer.
func (e *Engine) Dropped() uint64 { return e.dropped.Load() }

// engineErr wraps factory failures so lastErr always stores one concrete
// type (atomic.Value panics on inconsistently typed stores, and different
// failure paths produce different error implementations).
type engineErr struct{ err error }

// Err returns the most recent per-key construction failure (custom
// factories only; the built-in QLOVE path cannot fail after NewEngine),
// plus how many batches were dropped because of such failures.
func (e *Engine) Err() (error, uint64) {
	we, _ := e.lastErr.Load().(engineErr)
	return we.err, e.failed.Load()
}

// Shards returns the number of shards the engine runs.
func (e *Engine) Shards() int { return len(e.shards) }

// Spec returns the engine's window spec.
func (e *Engine) Spec() Window { return e.spec }

// Snapshot captures every snapshot-capable key without stopping ingestion.
// Each shard's capture is taken between batches on the shard's own
// goroutine, so it is consistent with the ingest order of every key it
// owns (captures of different shards are taken at independent instants).
func (e *Engine) Snapshot() EngineSnapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := EngineSnapshot{keys: make(map[string]Snapshot)}
	if e.closed {
		for _, s := range e.shards {
			for k, ent := range s.keys {
				if ent.snap != nil {
					out.keys[k] = ent.snap.Snapshot()
				}
			}
		}
		return out
	}
	resps := make([]chan engineCtlResp, len(e.shards))
	for i, s := range e.shards {
		resps[i] = make(chan engineCtlResp, 1)
		s.in <- engineMsg{ctl: &engineCtl{op: ctlSnapshot, resp: resps[i]}}
	}
	for _, ch := range resps {
		r := <-ch
		for k, sn := range r.snaps {
			out.keys[k] = sn
		}
	}
	return out
}

// Query captures one key's snapshot without stopping ingestion. ok is
// false when the key is unknown (or its policy cannot snapshot).
func (e *Engine) Query(key string) (Snapshot, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.shardOf(key)
	if e.closed {
		if ent := s.keys[key]; ent != nil && ent.snap != nil {
			return ent.snap.Snapshot(), true
		}
		return Snapshot{}, false
	}
	resp := make(chan engineCtlResp, 1)
	s.in <- engineMsg{ctl: &engineCtl{op: ctlQuery, key: key, resp: resp}}
	r := <-resp
	return r.snap, r.ok
}

// Export captures every snapshot-capable key (via Snapshot, so the
// capture rides the shard control queues and never stops ingestion) and
// writes it to w as one wire blob — the worker half of the paper's
// distributed-aggregation sketch. Returns the bytes written. Blobs from
// any number of engines may be concatenated and handed to an aggregator
// (EngineSnapshot.ReadFrom, ImportSnapshots or cmd/qlove-agg); keys
// captured by several engines merge into one logical-window view there.
func (e *Engine) Export(w io.Writer) (int64, error) {
	return e.Snapshot().WriteTo(w)
}

// ExportKeys writes the captures of just the named keys to w, skipping
// keys the engine does not monitor (or whose policies cannot snapshot).
// Each key is captured with Query, so the reads are ordered with ingest on
// that key without stopping it.
func (e *Engine) ExportKeys(w io.Writer, keys ...string) (int64, error) {
	enc := wire.NewEncoder(w)
	var n int64
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			// A repeated argument must not emit two frames: decoders merge
			// same-key frames as disjoint sub-streams, which would
			// double-count this key's (single) stream.
			continue
		}
		seen[k] = true
		sn, ok := e.Query(k)
		if !ok {
			continue
		}
		m, err := enc.Encode(k, sn)
		n += int64(m)
		if err != nil {
			return n, fmt.Errorf("qlove: export key %q: %w", k, err)
		}
	}
	return n, nil
}

// ImportSnapshots reads a wire blob of keyed captures (the exports of any
// number of remote engines) and merges it with this engine's own live
// capture into one aggregated view: keys present both remotely and
// locally combine their disjoint sub-streams; keys present on one side
// carry over. The local capture rides the control-op path, so importing
// never stops ingestion; the engine's own operators are not modified.
func (e *Engine) ImportSnapshots(r io.Reader) (EngineSnapshot, error) {
	var remote EngineSnapshot
	if _, err := remote.ReadFrom(r); err != nil {
		return EngineSnapshot{}, err
	}
	return e.Snapshot().Merge(remote)
}

// Evict retires a key, returning whether it existed. The key's operator
// goes back to the shard's pool (arena and all) for the next new key.
func (e *Engine) Evict(key string) bool {
	s := e.shardOf(key)
	e.mu.RLock()
	if !e.closed {
		resp := make(chan engineCtlResp, 1)
		s.in <- engineMsg{ctl: &engineCtl{op: ctlEvict, key: key, resp: resp}}
		e.mu.RUnlock()
		// The shard drains its queue even while Close runs, so the
		// response always arrives; waiting outside the lock keeps Close
		// unblocked.
		return (<-resp).ok
	}
	e.mu.RUnlock()
	// After Close the shard goroutines are gone, so this is the one
	// post-Close operation that MUTATES shard state (map delete + pool
	// put). It must exclude the RLock-holding readers (Snapshot, Query,
	// Keys), hence the write lock.
	e.mu.Lock()
	defer e.mu.Unlock()
	return s.evict(key)
}

// Keys returns the number of keys currently monitored.
func (e *Engine) Keys() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	if e.closed {
		for _, s := range e.shards {
			n += len(s.keys)
		}
		return n
	}
	resps := make([]chan engineCtlResp, len(e.shards))
	for i, s := range e.shards {
		resps[i] = make(chan engineCtlResp, 1)
		s.in <- engineMsg{ctl: &engineCtl{op: ctlCount, resp: resps[i]}}
	}
	for _, ch := range resps {
		n += (<-ch).n
	}
	return n
}

// Close stops ingestion, waits for every shard to drain its queue and then
// closes the Results channel (results already buffered stay readable until
// the consumer drains them). Push returns ErrEngineClosed afterwards;
// Snapshot, Query, Evict and Keys keep working against the final state.
// Shards never block on result delivery, so Close cannot deadlock on a
// slow consumer.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
	close(e.results)
}

// run is a shard's single-writer loop: every operator in s.keys is touched
// exclusively here.
func (s *engineShard) run() {
	for msg := range s.in {
		if msg.ctl != nil {
			s.control(msg.ctl)
			continue
		}
		ent, err := s.entry(msg.key)
		if err != nil {
			s.eng.failed.Add(1)
			s.eng.lastErr.Store(engineErr{err})
		} else {
			s.clock++
			ent.lastSeen = s.clock
			ent.pusher.PushBatch(*msg.buf, ent.emit)
		}
		s.eng.bufs.Put(msg.buf)
		if s.ttl > 0 && s.clock >= s.nextSweep {
			s.sweep()
		}
	}
}

// sweepInterval spaces TTL sweeps: half the TTL, so an idle key is
// reclaimed at most ~1.5×TTL deliveries after its last batch while each
// O(keys) scan amortizes over many deliveries.
func sweepInterval(ttl uint64) uint64 { return (ttl + 1) / 2 }

// sweep evicts every key idle for more than the TTL. It runs on the shard
// goroutine between batches, so it is ordered with ingest like any other
// shard work; evicted operators recycle through the pool.
func (s *engineShard) sweep() {
	for k, ent := range s.keys {
		if s.clock-ent.lastSeen > s.ttl {
			s.evict(k)
		}
	}
	s.nextSweep = s.clock + sweepInterval(s.ttl)
}

// entry returns the key's state, minting operator + pusher on first use.
func (s *engineShard) entry(key string) (*keyEntry, error) {
	if ent, ok := s.keys[key]; ok {
		return ent, nil
	}
	var pol Policy
	if s.pool != nil {
		pol = s.pool.Get()
	} else {
		var err error
		if pol, err = s.factory(); err != nil {
			return nil, fmt.Errorf("qlove: policy for key %q: %w", key, err)
		} else if pol == nil {
			return nil, fmt.Errorf("qlove: nil policy for key %q", key)
		}
	}
	pusher, err := stream.NewPusher(pol, s.eng.spec)
	if err != nil {
		return nil, err
	}
	ent := &keyEntry{pusher: pusher}
	ent.snap, _ = pol.(Snapshotter)
	// One closure per key, not per batch: the emit path stays
	// allocation-free at steady state.
	eng := s.eng
	ent.emit = func(ev stream.Evaluation) {
		select {
		case eng.results <- KeyedResult{Key: key, Result: Result{Evaluation: ev.Index, Estimates: ev.Estimates}}:
		default:
			eng.dropped.Add(1)
		}
	}
	s.keys[key] = ent
	return ent, nil
}

func (s *engineShard) control(ctl *engineCtl) {
	switch ctl.op {
	case ctlSnapshot:
		snaps := make(map[string]Snapshot, len(s.keys))
		for k, ent := range s.keys {
			if ent.snap != nil {
				snaps[k] = ent.snap.Snapshot()
			}
		}
		ctl.resp <- engineCtlResp{snaps: snaps}
	case ctlQuery:
		if ent := s.keys[ctl.key]; ent != nil && ent.snap != nil {
			ctl.resp <- engineCtlResp{snap: ent.snap.Snapshot(), ok: true}
			return
		}
		ctl.resp <- engineCtlResp{}
	case ctlEvict:
		ctl.resp <- engineCtlResp{ok: s.evict(ctl.key)}
	case ctlCount:
		ctl.resp <- engineCtlResp{n: len(s.keys)}
	}
}

// evict removes a key and recycles its operator.
func (s *engineShard) evict(key string) bool {
	ent, ok := s.keys[key]
	if !ok {
		return false
	}
	delete(s.keys, key)
	if s.pool != nil {
		if cp, ok := ent.pusher.Policy().(*core.Policy); ok {
			s.pool.Put(cp)
		}
	}
	return true
}

// EngineSnapshot is a point-in-time capture of every snapshot-capable key
// the engine monitors. It is immutable and safe to read from any
// goroutine.
type EngineSnapshot struct {
	keys map[string]Snapshot
}

// Query answers one key's configured quantiles from the capture.
func (s EngineSnapshot) Query(key string) ([]float64, bool) {
	sn, ok := s.keys[key]
	if !ok {
		return nil, false
	}
	return sn.Estimates(), true
}

// Get returns one key's raw snapshot, e.g. to Merge it with the same key's
// capture from another engine or datacenter.
func (s EngineSnapshot) Get(key string) (Snapshot, bool) {
	sn, ok := s.keys[key]
	return sn, ok
}

// Len returns the number of captured keys.
func (s EngineSnapshot) Len() int { return len(s.keys) }

// Keys returns the captured key names, sorted.
func (s EngineSnapshot) Keys() []string {
	out := make([]string, 0, len(s.keys))
	for k := range s.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteTo serializes the capture as one wire blob — a sequence of keyed
// frames in sorted key order, so identical captures produce identical
// bytes. It implements io.WriterTo; the blob is what Export ships across
// process boundaries and ReadFrom (or cmd/qlove-agg) consumes.
func (s EngineSnapshot) WriteTo(w io.Writer) (int64, error) {
	enc := wire.NewEncoder(w)
	var n int64
	for _, k := range s.Keys() {
		m, err := enc.Encode(k, s.keys[k])
		n += int64(m)
		if err != nil {
			return n, fmt.Errorf("qlove: export key %q: %w", k, err)
		}
	}
	return n, nil
}

// ReadFrom decodes keyed frames from r until EOF, merging them into the
// capture key-wise (frames for a key already present — read earlier or
// from a previous ReadFrom — merge as disjoint sub-streams of that key).
// It implements io.ReaderFrom and is the aggregator's accumulation
// primitive: start from the zero EngineSnapshot and fold every worker's
// blob in. On a decode or merge error the capture retains the frames
// merged so far and the byte count says how much input was consumed.
func (s *EngineSnapshot) ReadFrom(r io.Reader) (int64, error) {
	dec := wire.NewDecoder(r)
	for {
		key, sn, err := dec.Decode()
		if err == io.EOF {
			return dec.Consumed(), nil
		}
		if err != nil {
			return dec.Consumed(), fmt.Errorf("qlove: import: %w", err)
		}
		if s.keys == nil {
			s.keys = make(map[string]Snapshot)
		}
		if prev, ok := s.keys[key]; ok {
			m, err := prev.Merge(sn)
			if err != nil {
				return dec.Consumed(), fmt.Errorf("qlove: import key %q: %w", key, err)
			}
			sn = m
		}
		s.keys[key] = sn
	}
}

// Merge combines two captures key-wise: keys present in both merge their
// snapshots (disjoint sub-streams of one logical key — e.g. the same
// service monitored by two engines); keys present in one carry over.
func (s EngineSnapshot) Merge(o EngineSnapshot) (EngineSnapshot, error) {
	out := EngineSnapshot{keys: make(map[string]Snapshot, len(s.keys)+len(o.keys))}
	for k, sn := range s.keys {
		out.keys[k] = sn
	}
	for k, sn := range o.keys {
		if prev, ok := out.keys[k]; ok {
			m, err := prev.Merge(sn)
			if err != nil {
				return EngineSnapshot{}, fmt.Errorf("key %q: %w", k, err)
			}
			out.keys[k] = m
			continue
		}
		out.keys[k] = sn
	}
	return out, nil
}
