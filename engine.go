package qlove

import (
	"context"
	"fmt"
	"hash/maphash"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/wire"
)

// Engine is the keyed, sharded, concurrent form of the monitoring API: it
// maintains one sliding-window quantile operator per metric key (a
// service, a pod, a route) and scales ingestion across shards, each shard
// a single-writer goroutine owning its slice of the key space. This is the
// deployment shape of datacenter telemetry (§1 of the paper): not one
// stream, but millions of keyed series monitored simultaneously.
//
// Architecture:
//
//   - Keys are hash-partitioned across Shards goroutines. Each shard owns
//     a map[key]*Pusher — the same per-stream state machine Monitor wraps
//     — and is the ONLY goroutine that touches those operators, so the
//     hot path needs no locks and no atomic traffic.
//   - Push(key, vs) copies the batch into a recycled buffer and enqueues
//     it on the owning shard's MPSC channel; the shard delivers it through
//     the operator's period-aligned ObserveBatch path, preserving the
//     zero-allocation batched ingestion path end to end. Per-key element
//     order is the order of Push calls (concurrent pushers to the SAME key
//     interleave at batch granularity).
//   - Evaluations fan in on a single buffered Results channel. The
//     overload response is EngineConfig.Backpressure: under the default
//     BackpressureDrop, delivery never blocks ingestion — when the
//     consumer falls behind, the oldest pending results are the ones a
//     monitoring dashboard has already missed, so new evaluations are
//     dropped and counted (Dropped, Stats) rather than stalling every
//     shard; under BackpressureBlock delivery is lossless and the stall
//     propagates back through the shard queues to Push. Either way,
//     overload is observable, not inferred: Engine.Stats reads per-shard
//     counters (delivered batches, queue high-water, blocked time, drops,
//     resident keys) without locks.
//   - Snapshot and Query serve reads WITHOUT stopping ingestion: the
//     request rides the shard's own queue (so it is ordered with respect
//     to ingest on every key) and the shard hands back immutable Snapshot
//     captures that are safe to read, retain and Merge from any goroutine.
//
// Engines built from a Config (the default) mint QLOVE operators from a
// per-shard core.Pool, so evicted keys recycle their arena-backed trees
// instead of feeding the garbage collector. Engines built from a custom
// Factory monitor any Policy; Snapshot/Query then cover the keys whose
// policies implement Snapshotter.
type Engine struct {
	spec    Window
	shards  []*engineShard
	results chan KeyedResult
	failed  atomic.Uint64
	lastErr atomic.Value // engineErr; atomic.Value needs one concrete type
	seed    maphash.Seed
	id      uint64 // random instance identity; binds ExportCursors to THIS engine
	timed   bool   // keys run wall-clock windows (TimedWindow set)
	block   bool   // BackpressureBlock: lossless delivery, shards block on Results
	salt    int    // RouteSalt sub-streams per key (0/1 = off)
	saltCtr atomic.Uint64
	routes  atomic.Pointer[routeTable] // per-key overrides (engineroute.go); nil = pure hash
	adapt   *adaptState                // adaptive controller (engineadapt.go); nil = static
	incSeq  atomic.Uint64              // engine-global key incarnation mint (migration-stable)
	now     func() time.Time
	bufs    sync.Pool // *[]float64 ingest buffers
	wg      sync.WaitGroup

	mu     sync.RWMutex // guards closed; held shared by every public op
	closed bool
}

// KeyedResult is one evaluation produced by the Engine for one key.
type KeyedResult struct {
	// Key is the metric key the evaluation belongs to.
	Key string
	Result
}

// EngineConfig parameterizes an Engine.
type EngineConfig struct {
	// Config parameterizes the QLOVE operator minted for each key — the
	// default path, with per-shard operator pooling and snapshot support.
	// Ignored when Factory is set.
	Config Config
	// Factory, when non-nil, overrides Config: each new key gets a fresh
	// policy from it (e.g. Registry().Bind("cmqs", spec, phis)). Spec must
	// then carry the window spec the factory's policies were bound to.
	Factory BoundFactory
	// Spec is the window spec for Factory-built engines. With Config it
	// must be zero or equal to Config.Spec.
	Spec Window
	// Shards is the number of ingest goroutines (and key partitions).
	// Defaults to runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth is the per-shard ingest queue capacity in batches.
	// Default 128.
	QueueDepth int
	// ResultBuffer is the capacity of the fan-in Results channel. Default
	// 1024.
	ResultBuffer int
	// KeyTTL, when positive, expires idle keys: a key that has received no
	// batch for more than KeyTTL batch deliveries on its owning shard is
	// evicted by a periodic sweep, its operator recycled through the
	// shard's pool exactly as an explicit Evict would. The clock is
	// pushes-since-last-seen, not wall time, so an idle fleet costs
	// nothing and a busy shard reclaims churned keys in bounded memory —
	// and exported blobs stay bounded under key churn. The sweep runs
	// every ⌈KeyTTL/2⌉ deliveries (each sweep is O(keys in shard)), so an
	// idle key survives at most ~1.5×KeyTTL deliveries past its last
	// batch. 0 disables expiry.
	KeyTTL int
	// KeyTTLDuration, when positive, expires idle keys on a WALL-CLOCK
	// basis: a key that has received no batch for more than KeyTTLDuration
	// is evicted, even on a shard receiving no deliveries at all (each
	// shard arms a ticker at half the TTL, and overdue sweeps also
	// piggyback on deliveries). This is the complement of KeyTTL's
	// delivery-count clock: a quiet fleet still reclaims churned keys.
	// Both modes may be enabled together. 0 disables wall-clock expiry.
	KeyTTLDuration time.Duration
	// TimedWindow and TimedPeriod switch the engine into TIMED mode: every
	// key answers over a wall-clock sliding window of TimedWindow,
	// re-evaluated every TimedPeriod — the paper's §2 "evaluate every one
	// minute for the elements seen last one hour" — instead of count-based
	// Spec windows. Each shard owns a stream.TimedPusher per key (the same
	// state machine TimedMonitor wraps): batch deliveries are stamped with
	// the shard's clock, period boundaries seal whatever the sub-window
	// holds, and shard ticks Flush every key so evaluations fire on wall
	// time even for keys receiving no traffic. The count-based Config.Spec
	// still governs the operator's few-k budgets (and caps a sub-window's
	// element count via the count auto-seal); choose its Size/Period to
	// approximate the expected events per timed window/period. TimedWindow
	// must be a positive multiple of TimedPeriod. Both zero selects the
	// count-based mode. Timed engines require policies that support
	// time-driven sealing (the built-in QLOVE path does; a custom Factory
	// must produce policies implementing EndPeriod/SubWindowCount/SealGen).
	TimedWindow time.Duration
	// TimedPeriod is the timed evaluation period; see TimedWindow.
	TimedPeriod time.Duration
	// Tick is the cadence of the shard flush ticker in timed mode: every
	// Tick, each shard Flushes its keys at the current clock (the flush
	// also piggybacks on batch deliveries once overdue, and Engine.Tick
	// drives it explicitly for deterministic fake-clock tests). Defaults
	// to TimedPeriod. Only meaningful in timed mode.
	Tick time.Duration
	// Clock overrides the wall-clock source for KeyTTLDuration and timed
	// windows (tests use a fake clock for deterministic expiry and timed
	// flushes). nil means time.Now. The function is called from shard
	// goroutines and must be safe for concurrent use.
	Clock func() time.Time
	// Backpressure selects the overload response when the Results consumer
	// falls behind: BackpressureDrop (default) sheds the newest evaluations
	// at the fan-in and counts them; BackpressureBlock propagates the stall
	// to producers instead — delivery is lossless, ingestion blocks, and
	// snapshots/exports stay bit-identical to drop mode fed the same
	// batches. See the Backpressure constants for the consumer contract.
	Backpressure Backpressure
	// RouteSalt, when > 1, spreads EVERY pushed key across up to RouteSalt
	// independent sub-streams, each hash-routed (and windowed) on its own —
	// the escape hatch for pathological single-key storms, where one
	// scorching key otherwise pins its whole traffic on one shard whatever
	// the shard count. Push i (engine-wide) goes to sub-stream i mod
	// RouteSalt. The trade-offs, all consequences of a key no longer being
	// one stream:
	//
	//   - Reads merge at query time: Snapshot, Query, Export and ExportKeys
	//     fold a key's resident sub-streams through the existing
	//     core.Snapshot merge (disjoint sub-streams of one logical key, the
	//     same semantics as cross-engine aggregation), so estimates answer
	//     over the union — but a salted key's capture is a MERGED view, not
	//     bit-identical to an unsalted single stream's.
	//   - Per-key element order holds within a sub-stream, not across them.
	//   - Keys() and ShardStats.ResidentKeys count sub-streams.
	//   - ExportDelta ships each sub-stream under its INTERNAL name
	//     ("key\x00<j>") — every sub-stream is a single stream with real
	//     seal generations, so cursors anchor on it like any other key.
	//     Receivers (Aggregator, or any wire consumer grouping with the
	//     NUL convention) fold sub-streams back to logical keys at read
	//     time; full Export folds them at capture time as before.
	//
	// Keys must not contain a NUL byte (the reserved internal sub-stream
	// separator; Push rejects such keys). 0 and 1 disable salting; max
	// 256. Incompatible with Adapt, whose per-key escalation is the
	// adaptive form of the same mechanism.
	RouteSalt int
	// Adapt, when non-nil, enables ADAPTIVE routing: a per-key route table
	// consulted on every Push, plus an occupancy-driven controller that
	// escalates hot keys to salted sub-stream routing, de-escalates them
	// when traffic subsides, and migrates whole cold keys between shards —
	// see AdaptConfig. Keys must not contain a NUL byte. Incompatible with
	// RouteSalt > 1.
	Adapt *AdaptConfig
}

// ErrEngineClosed is returned by Push after Close.
var ErrEngineClosed = fmt.Errorf("qlove: engine closed")

// ErrReservedKey is returned by Push for keys containing a NUL byte — the
// reserved separator of the internal salted sub-stream namespace (see
// EngineConfig.RouteSalt and AdaptConfig).
var ErrReservedKey = fmt.Errorf("qlove: key contains reserved NUL byte")

const (
	defaultQueueDepth   = 128
	defaultResultBuffer = 1024
	defaultBatchCap     = 256
)

type engineShard struct {
	eng     *Engine
	in      chan engineMsg
	keys    map[string]*keyEntry
	pool    *core.Pool   // non-nil on the Config path
	factory BoundFactory // non-nil on the Factory path

	// Idle-key expiry (KeyTTL > 0): clock counts batch deliveries to this
	// shard; a key whose lastSeen lags by more than ttl is evicted by the
	// next sweep at nextSweep.
	ttl       uint64
	clock     uint64
	nextSweep uint64

	// Wall-clock expiry (KeyTTLDuration > 0): a key idle past wallTTL is
	// evicted by a sweep armed on a ticker (so quiet shards still expire)
	// and piggybacked on deliveries once overdue.
	wallTTL    time.Duration
	now        func() time.Time
	nextWallAt time.Time

	// Timed mode (timedWindow > 0): every key is a TimedPusher sealing
	// wall-clock sub-windows; a ticker at tick (plus a delivery piggyback
	// once nextTickAt is overdue, plus explicit Engine.Tick control ops)
	// Flushes every key at the shard's clock.
	timedWindow time.Duration
	timedPeriod time.Duration
	tick        time.Duration
	nextTickAt  time.Time

	// Delta-export bookkeeping: mutations counts every state change an
	// export could care about (key created, key evicted or migrated away,
	// any seal) so an ExportDelta whose cursor saw the current value skips
	// the shard without touching a single key. Incarnation numbers come
	// from the ENGINE-global e.incSeq, so a key keeps its identity when a
	// migration moves it between shards and can never collide with the
	// destination's counter.
	mutations uint64

	// counters is the shard's lock-free stats plane (Engine.Stats):
	// producers update the enqueue side, the shard goroutine the delivery
	// side, readers poll without locks.
	counters shardCounters
}

type keyEntry struct {
	pusher   *stream.Pusher      // count-based mode
	timed    *stream.TimedPusher // timed mode (exactly one of the two is set)
	snap     Snapshotter         // non-nil when the policy supports snapshots
	emit     func(stream.Evaluation)
	lastSeen uint64    // shard clock at this key's most recent batch
	lastAt   time.Time // wall clock at this key's most recent batch (wallTTL > 0)
	inc      uint64    // incarnation: unique per key lifetime, engine-global
	gen      uint64    // last observed seal generation (gens != nil)
	resident int       // last observed resident summary count (gens != nil)
	gens     sealGenerator
	batches  uint64 // lifetime batches delivered (travels with migrations)
	sampled  uint64 // batches already attributed to a ctlSample pass

	// Migration parking (engineroute.go): a parking entry holds a spot at
	// the destination shard while the operator is still in flight from the
	// source. Batches arriving under the name are parked, in order, and
	// replayed by ctlInstall; every other shard path (sweeps, snapshots,
	// delta scans, timed flushes) skips parking entries.
	parking bool
	park    []*[]float64
}

// policy returns the operator behind whichever pusher variant the entry
// runs (count-based or timed).
func (ent *keyEntry) policy() stream.Policy {
	if ent.timed != nil {
		return ent.timed.Policy()
	}
	return ent.pusher.Policy()
}

// sealGenerator is the optional policy capability delta exports key off:
// the monotonic per-operator seal count plus the resident summary count.
// Together they change exactly when the operator's snapshot changes — a
// seal advances SealGen; a summary can also EXPIRE without a new seal
// (the batch after a boundary expires before it observes), which only
// SubWindowCount reflects. core.Policy implements it; keys whose policies
// do not are re-shipped whole on every delta export.
type sealGenerator interface {
	SealGen() uint64
	SubWindowCount() int
}

// engineMsg is one unit of shard work: either an ingest batch or a control
// request (both ride the same queue, so reads are ordered with ingest).
type engineMsg struct {
	key string
	buf *[]float64
	ctl *engineCtl
}

type ctlOp int

const (
	ctlSnapshot ctlOp = iota
	ctlQuery
	ctlEvict
	ctlCount
	ctlDelta
	ctlTick
	// Migration protocol ops (engineroute.go): park a name at the
	// destination, detach an operator from the source, attach it (and
	// replay parked batches) at the destination.
	ctlPrepare
	ctlHandoff
	ctlInstall
	// Occupancy ops (engineadapt.go): per-key load attribution and a
	// cheap residency probe.
	ctlSample
	ctlExists
)

type engineCtl struct {
	op   ctlOp
	key  string
	resp chan engineCtlResp
	cur  *deltaCursorView // ctlDelta
	ent  *keyEntry        // ctlInstall: the handed-off operator (nil = none)
	n    int              // ctlSample: top-N keys to attribute
}

type engineCtlResp struct {
	snaps map[string]Snapshot
	snap  Snapshot
	ok    bool
	n     int
	delta *shardDeltaResp
	ent   *keyEntry // ctlHandoff: the detached operator
	loads []KeyLoad // ctlSample
}

// keyCursor is one key's entry in an ExportCursor: the incarnation, seal
// generation and resident summary count the destination last received
// (resident because expiry can change a capture without a new seal).
type keyCursor struct {
	inc, gen uint64
	resident int
}

// deltaCursorView is the read-only slice of an ExportCursor a shard needs:
// the per-key map (shared, read concurrently by every shard — safe, no
// writer runs during the scan) and this shard's mutation clock.
type deltaCursorView struct {
	keys map[string]keyCursor
	mut  uint64
	have bool // cursor carries per-shard clocks (not a first export)
}

// shardDeltaResp is one shard's contribution to a delta export.
type shardDeltaResp struct {
	skipped   bool // mutation clock unchanged: nothing to ship, keys untouched
	mutations uint64
	changed   map[string]deltaCapture // keys needing a frame
	present   map[string]uint64       // ALL snapshot-capable keys -> incarnation
}

type deltaCapture struct {
	snap Snapshot
	inc  uint64
}

// NewEngine builds and starts an engine; callers must Close it to release
// the shard goroutines.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	resBuf := cfg.ResultBuffer
	if resBuf <= 0 {
		resBuf = defaultResultBuffer
	}
	timed := cfg.TimedWindow != 0 || cfg.TimedPeriod != 0 || cfg.Tick != 0
	if timed {
		if cfg.TimedPeriod <= 0 || cfg.TimedWindow < cfg.TimedPeriod || cfg.TimedWindow%cfg.TimedPeriod != 0 {
			return nil, fmt.Errorf("qlove: engine timed window %v must be a positive multiple of period %v",
				cfg.TimedWindow, cfg.TimedPeriod)
		}
		if cfg.Tick < 0 {
			return nil, fmt.Errorf("qlove: engine Tick %v < 0", cfg.Tick)
		}
	}
	tick := cfg.Tick
	if timed && tick == 0 {
		tick = cfg.TimedPeriod
	}
	spec := cfg.Spec
	var mkPool func() (*core.Pool, error)
	if cfg.Factory == nil {
		if spec != (Window{}) && spec != cfg.Config.Spec {
			return nil, fmt.Errorf("qlove: engine Spec %v conflicts with Config.Spec %v", spec, cfg.Config.Spec)
		}
		spec = cfg.Config.Spec
		mkPool = func() (*core.Pool, error) { return core.NewPool(cfg.Config) }
	} else {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("qlove: engine with custom factory: %w", err)
		}
		// Probe the factory once so configuration errors surface at
		// construction, not on the first pushed key.
		p, err := cfg.Factory()
		if err != nil {
			return nil, fmt.Errorf("qlove: engine factory: %w", err)
		}
		if p == nil {
			return nil, fmt.Errorf("qlove: engine factory returned nil policy")
		}
		if timed {
			if _, ok := p.(stream.TimedPolicy); !ok {
				return nil, fmt.Errorf("qlove: timed engine: policy %q does not support time-driven sealing", p.Name())
			}
		}
	}
	if cfg.RouteSalt < 0 || cfg.RouteSalt > 256 {
		return nil, fmt.Errorf("qlove: engine RouteSalt %d outside [0, 256]", cfg.RouteSalt)
	}
	salt := cfg.RouteSalt
	if salt == 1 {
		salt = 0 // one sub-stream is just the unsalted path
	}
	if cfg.Adapt != nil && salt > 1 {
		return nil, fmt.Errorf("qlove: Adapt cannot be combined with RouteSalt %d (per-key escalation replaces engine-wide salting)", cfg.RouteSalt)
	}
	e := &Engine{
		spec:    spec,
		timed:   timed,
		block:   cfg.Backpressure == BackpressureBlock,
		salt:    salt,
		results: make(chan KeyedResult, resBuf),
		seed:    maphash.MakeSeed(),
		// A fresh random seed hashed over nothing is a cheap random
		// instance id; 1 is added so 0 stays the "unbound cursor" marker.
		id: maphash.Bytes(maphash.MakeSeed(), nil) | 1,
	}
	e.bufs.New = func() any {
		b := make([]float64, 0, defaultBatchCap)
		return &b
	}
	if cfg.KeyTTL < 0 {
		return nil, fmt.Errorf("qlove: engine KeyTTL %d < 0", cfg.KeyTTL)
	}
	if cfg.KeyTTLDuration < 0 {
		return nil, fmt.Errorf("qlove: engine KeyTTLDuration %v < 0", cfg.KeyTTLDuration)
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	e.now = now
	if cfg.Adapt != nil {
		acfg, err := cfg.Adapt.withDefaults()
		if err != nil {
			return nil, err
		}
		e.adapt = &adaptState{
			cfg:    acfg,
			esc:    make(map[string]*escState),
			pinned: make(map[string]int),
		}
	}
	e.shards = make([]*engineShard, shards)
	for i := range e.shards {
		s := &engineShard{
			eng:         e,
			in:          make(chan engineMsg, depth),
			keys:        make(map[string]*keyEntry),
			factory:     cfg.Factory,
			ttl:         uint64(cfg.KeyTTL),
			wallTTL:     cfg.KeyTTLDuration,
			now:         now,
			timedWindow: cfg.TimedWindow,
			timedPeriod: cfg.TimedPeriod,
			tick:        tick,
		}
		if s.ttl > 0 {
			s.nextSweep = sweepInterval(s.ttl)
		}
		if s.wallTTL > 0 {
			s.nextWallAt = now().Add(wallSweepInterval(s.wallTTL))
		}
		if s.tick > 0 {
			s.nextTickAt = now().Add(s.tick)
		}
		if mkPool != nil {
			pool, err := mkPool()
			if err != nil {
				return nil, err
			}
			s.pool = pool
		}
		e.shards[i] = s
	}
	e.wg.Add(shards)
	for _, s := range e.shards {
		go func(s *engineShard) {
			defer e.wg.Done()
			s.run()
		}(s)
	}
	e.startAdapt()
	return e, nil
}

// shardIndex hash-partitions a key.
func (e *Engine) shardIndex(key string) int {
	return int(maphash.String(e.seed, key) % uint64(len(e.shards)))
}

func (e *Engine) shardOf(key string) *engineShard {
	return e.shards[e.shardIndex(key)]
}

// route picks the shard a push goes to. The per-key route table (adaptive
// escalations and pins) takes precedence; the engine-wide RouteSalt comes
// next (push i engine-wide addresses sub-stream i mod salt); plain hash
// dispatch is the default. Returns the shard and the internal key name to
// deliver under. Called under e.mu.RLock — held across route AND enqueue,
// which is what lets a route flip under the write lock act as a cutover
// barrier (engineroute.go).
func (e *Engine) route(key string) (*engineShard, string) {
	if rt := e.routes.Load(); rt != nil {
		if ov := rt.m[key]; ov != nil {
			switch {
			case ov.salt > 1:
				key = saltedKey(key, byte((ov.ctr.Add(1)-1)%uint64(ov.salt)))
				return e.shardOf(key), key
			case ov.salt == 1:
				key = saltedKey(key, 0)
				return e.shardOf(key), key
			case ov.shard >= 0:
				return e.shards[ov.shard], key
			}
		}
	}
	if e.salt > 1 {
		key = saltedKey(key, byte((e.saltCtr.Add(1)-1)%uint64(e.salt)))
	}
	return e.shardOf(key), key
}

// enqueue places one batch on the shard queue, accounting the wait when
// the queue is full (ShardStats.Blocked) and the observed backlog
// (ShardStats.QueueHighWater). ctx, when non-nil, bounds the wait.
func (s *engineShard) enqueue(ctx context.Context, msg engineMsg) error {
	select {
	case s.in <- msg:
	default:
		// Queue full: producers are ahead of the shard. Block (that IS the
		// ingest backpressure) and account the stall.
		start := time.Now()
		if ctx == nil {
			s.in <- msg
			s.counters.blockedNanos.Add(uint64(time.Since(start)))
		} else {
			select {
			case s.in <- msg:
				s.counters.blockedNanos.Add(uint64(time.Since(start)))
			case <-ctx.Done():
				s.counters.blockedNanos.Add(uint64(time.Since(start)))
				s.eng.bufs.Put(msg.buf)
				return ctx.Err()
			}
		}
	}
	s.counters.enqueued.Add(1)
	s.counters.noteDepth(len(s.in))
	return nil
}

// Push feeds a batch of elements for one key. The values are copied before
// Push returns, so the caller may reuse vs immediately. Push blocks only
// when the owning shard's queue is full (backpressure), never on result
// delivery — though under BackpressureBlock a stalled Results consumer
// eventually fills the queues and surfaces here. Ingestion is lossless:
// Push never drops a batch. Safe for any number of concurrent callers; use
// PushContext to bound the wait.
func (e *Engine) Push(key string, vs []float64) error {
	return e.push(nil, key, vs)
}

// PushContext is Push with a bounded wait: when the owning shard's queue
// stays full until ctx is done (a wedged consumer under BackpressureBlock,
// or simply sustained overload), it abandons the batch and returns
// ctx.Err(). An abandoned batch is never partially ingested — it either
// reaches the shard queue whole or not at all — and is NOT counted
// enqueued, so producers can tell accepted load from offered load.
func (e *Engine) PushContext(ctx context.Context, key string, vs []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.push(ctx, key, vs)
}

func (e *Engine) push(ctx context.Context, key string, vs []float64) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		// Checked before the empty fast-path so producers using Push's
		// error as their shutdown signal see closure on empty reports too.
		return ErrEngineClosed
	}
	if strings.IndexByte(key, saltSep) >= 0 {
		// NUL is the internal sub-stream separator; letting it through
		// would let a user key alias an escalated key's sub-stream.
		return ErrReservedKey
	}
	if len(vs) == 0 {
		return nil
	}
	bp := e.bufs.Get().(*[]float64)
	*bp = append((*bp)[:0], vs...)
	s, routed := e.route(key)
	return s.enqueue(ctx, engineMsg{key: routed, buf: bp})
}

// Results returns the evaluation fan-in channel. It closes after Close has
// drained every shard. Evaluations for one key arrive in order; ordering
// across keys is not defined.
func (e *Engine) Results() <-chan KeyedResult { return e.results }

// Dropped returns how many evaluations were discarded because the Results
// consumer fell behind the buffer — DELIVERY-side loss only, the sum of
// ShardStats.EvalsDropped across shards (always zero under
// BackpressureBlock). It says nothing about ingest-side loss, which has
// its own accounting: Push never loses a batch, PushContext abandonment is
// the caller's error, and factory-failure discards are ShardStats.
// FailedBatches (see Err). Use Stats for the per-shard breakdown.
func (e *Engine) Dropped() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.counters.evalsDropped.Load()
	}
	return n
}

// engineErr wraps factory failures so lastErr always stores one concrete
// type (atomic.Value panics on inconsistently typed stores, and different
// failure paths produce different error implementations).
type engineErr struct{ err error }

// Err returns the most recent per-key construction failure (custom
// factories only; the built-in QLOVE path cannot fail after NewEngine),
// plus how many batches were dropped because of such failures.
func (e *Engine) Err() (error, uint64) {
	we, _ := e.lastErr.Load().(engineErr)
	return we.err, e.failed.Load()
}

// Shards returns the number of shards the engine runs.
func (e *Engine) Shards() int { return len(e.shards) }

// Spec returns the engine's window spec.
func (e *Engine) Spec() Window { return e.spec }

// Snapshot captures every snapshot-capable key without stopping ingestion.
// Each shard's capture is taken between batches on the shard's own
// goroutine, so it is consistent with the ingest order of every key it
// owns (captures of different shards are taken at independent instants).
func (e *Engine) Snapshot() EngineSnapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	raw := make(map[string]Snapshot)
	if e.closed {
		for _, s := range e.shards {
			for k, ent := range s.keys {
				if ent.snap != nil {
					raw[k] = ent.snap.Snapshot()
				}
			}
		}
		return EngineSnapshot{keys: e.foldSalted(raw)}
	}
	resps := make([]chan engineCtlResp, len(e.shards))
	for i, s := range e.shards {
		resps[i] = make(chan engineCtlResp, 1)
		s.in <- engineMsg{ctl: &engineCtl{op: ctlSnapshot, resp: resps[i]}}
	}
	for _, ch := range resps {
		r := <-ch
		for k, sn := range r.snaps {
			raw[k] = sn
		}
	}
	return EngineSnapshot{keys: e.foldSalted(raw)}
}

// foldSalted collapses internal sub-stream captures to logical keys: the
// identity when nothing is salted; otherwise each key's resident streams
// merge in [base residue, sub-stream 0, 1, …] order (deterministic bytes
// for Export), the same disjoint-sub-stream merge cross-engine aggregation
// uses. Purely syntactic on the NUL convention, so it handles engine-wide
// RouteSalt names and per-key adaptive escalation names alike — including
// a base residue coexisting with sub-streams mid-escalation.
func (e *Engine) foldSalted(raw map[string]Snapshot) map[string]Snapshot {
	any := false
	for name := range raw {
		if _, _, salted := splitKey(name); salted {
			any = true
			break
		}
	}
	if !any {
		return raw
	}
	// Slot 0 holds the base residue, slot j+1 sub-stream j; absent slots
	// stay zero, the merge identity.
	grouped := make(map[string][]Snapshot)
	for name, sn := range raw {
		base, sub, salted := splitKey(name)
		idx := 0
		if salted {
			idx = int(sub) + 1
		}
		g := grouped[base]
		if len(g) <= idx {
			ng := make([]Snapshot, idx+1)
			copy(ng, g)
			g = ng
		}
		g[idx] = sn
		grouped[base] = g
	}
	out := make(map[string]Snapshot, len(grouped))
	for base, g := range grouped {
		m, err := MergeSnapshots(g)
		if err != nil {
			// Unreachable by construction: every sub-stream's operator is
			// minted from the same config. Keep the first resident view
			// rather than lose the key.
			for _, sn := range g {
				if sn.SubWindows() > 0 {
					m = sn
					break
				}
			}
		}
		out[base] = m
	}
	return out
}

// Query captures one key's snapshot without stopping ingestion. ok is
// false when the key is unknown (or its policy cannot snapshot). For a
// salted key (engine-wide RouteSalt, or a key the adaptive controller has
// escalated — even one since de-escalated whose fan has not yet drained)
// the capture is the [base, sub-stream 0, 1, …]-ordered merge of the
// key's resident streams.
func (e *Engine) Query(key string) (Snapshot, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	max := e.salt
	if ov := e.override(key); ov != nil && ov.maxSalt > max {
		max = ov.maxSalt
	}
	if max <= 1 {
		return e.queryOne(key)
	}
	snaps := make([]Snapshot, max+1)
	found := false
	if sn, ok := e.queryOne(key); ok {
		snaps[0] = sn
		found = true
	}
	for j := 0; j < max; j++ {
		if sn, ok := e.queryOne(saltedKey(key, byte(j))); ok {
			snaps[j+1] = sn
			found = true
		}
	}
	if !found {
		return Snapshot{}, false
	}
	m, err := MergeSnapshots(snaps) // zero slots are the merge identity
	if err != nil {
		return Snapshot{}, false // unreachable: one config mints every sub-stream
	}
	return m, true
}

// queryOne captures one INTERNAL key name; callers hold e.mu.RLock. The
// routed shard answers first; on a miss the hash-home shard is probed too
// (a pin observed through a racing route flip can be one step stale).
func (e *Engine) queryOne(key string) (Snapshot, bool) {
	s := e.locateShard(key)
	if sn, ok := e.queryShard(s, key); ok {
		return sn, true
	}
	if h := e.shardOf(key); h != s {
		return e.queryShard(h, key)
	}
	return Snapshot{}, false
}

func (e *Engine) queryShard(s *engineShard, key string) (Snapshot, bool) {
	if e.closed {
		if ent := s.keys[key]; ent != nil && ent.snap != nil {
			return ent.snap.Snapshot(), true
		}
		return Snapshot{}, false
	}
	resp := make(chan engineCtlResp, 1)
	s.in <- engineMsg{ctl: &engineCtl{op: ctlQuery, key: key, resp: resp}}
	r := <-resp
	return r.snap, r.ok
}

// Export captures every snapshot-capable key (via Snapshot, so the
// capture rides the shard control queues and never stops ingestion) and
// writes it to w as one wire blob — the worker half of the paper's
// distributed-aggregation sketch. Returns the bytes written. Blobs from
// any number of engines may be concatenated and handed to an aggregator
// (EngineSnapshot.ReadFrom, ImportSnapshots or cmd/qlove-agg); keys
// captured by several engines merge into one logical-window view there.
func (e *Engine) Export(w io.Writer) (int64, error) {
	return e.Snapshot().WriteTo(w)
}

// ExportKeys writes the captures of just the named keys to w, skipping
// keys the engine does not monitor (or whose policies cannot snapshot).
// Each key is captured with Query, so the reads are ordered with ingest on
// that key without stopping it.
func (e *Engine) ExportKeys(w io.Writer, keys ...string) (int64, error) {
	enc := wire.NewEncoder(w)
	var n int64
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			// A repeated argument must not emit two frames: decoders merge
			// same-key frames as disjoint sub-streams, which would
			// double-count this key's (single) stream.
			continue
		}
		seen[k] = true
		sn, ok := e.Query(k)
		if !ok {
			continue
		}
		m, err := enc.Encode(k, sn)
		n += int64(m)
		if err != nil {
			return n, fmt.Errorf("qlove: export key %q: %w", k, err)
		}
	}
	return n, nil
}

// ExportCursor tracks, per destination, what a previous ExportDelta has
// already shipped: each exported key's incarnation and seal generation,
// plus per-shard mutation clocks that let an export skip untouched shards
// in O(1). The zero value (or new(ExportCursor)) is a valid first cursor —
// the first export bootstraps every key with a from-generation-0 delta.
//
// A cursor belongs to the Engine that filled it (key→shard placement is
// per-engine) and to one destination; it is NOT safe for concurrent use,
// though any number of cursors may export from one engine concurrently.
type ExportCursor struct {
	keys   map[string]keyCursor
	shards []uint64
	have   bool
	// engine is the instance id of the Engine the cursor was filled
	// against (0 = not yet bound). Incarnations and generations are only
	// meaningful within one engine instance; ExportDelta checks the
	// binding so a persisted cursor restored against a REBUILT engine —
	// whose per-shard incarnation counters restart and readily collide —
	// degrades to a safe tombstone+bootstrap re-ship instead of anchoring
	// deltas on another engine's state.
	engine uint64
}

// Keys returns how many keys the cursor currently tracks.
func (c *ExportCursor) Keys() int { return len(c.keys) }

// Reset forgets everything the cursor has shipped, making the next
// ExportDelta a full re-bootstrap. Call it when a delta blob may not have
// REACHED its destination (a failed push after a successful export): the
// cursor advances at encode time, so a blob lost in transit would
// otherwise leave the destination permanently behind — a lost delta for a
// live key at least surfaces as a fold error there, but a lost TOMBSTONE
// is silent (later exports carry no frame at all for a dead key).
// Re-bootstrapping is always safe: from-generation-0 frames replace.
func (c *ExportCursor) Reset() { *c = ExportCursor{} }

// ExportDelta writes to w only what changed since the cursor's last export
// — the incremental half of the distributed plane, cutting steady-state
// export bandwidth from O(resident keys) to O(keys changed since the last
// export). The blob carries, in sorted key order:
//
//   - a tombstone frame for every key the cursor has that the engine no
//     longer monitors (TTL expiry or explicit Evict), so receivers delete
//     it — tombstones are computed as the set difference against the
//     cursor, so none is ever lost, however long ago the eviction;
//   - for every key sealed past (or unknown to) the cursor, a delta frame
//     with the summaries sealed since the cursor's generation (a key the
//     cursor never saw, or one evicted and re-created since — detected by
//     its incarnation — is bootstrapped with a from-generation-0 replace
//     frame, preceded by a tombstone when re-created).
//
// Like Snapshot, the capture rides the shard control queues and never
// stops ingestion; per-shard seal counters let untouched shards answer
// without scanning a single key. On success the cursor is advanced in
// place; on error it is reset (the next export re-bootstraps — receivers
// treat from-generation-0 deltas as replacements, so this is always safe).
// The cursor advances when the blob is ENCODED, not delivered: a caller
// whose transport later fails must call cursor.Reset before continuing,
// or the destination is left permanently behind (see Reset).
// Receivers fold the blob with Aggregator.Apply (or any wire.DecodeFrame
// consumer); folded state is bit-for-bit the capture Export would have
// shipped whole. Keys whose policies do not track seal generations
// (anything but the built-in QLOVE path) are re-shipped as full frames on
// every export — correct, just not incremental.
func (e *Engine) ExportDelta(w io.Writer, cur *ExportCursor) (int64, error) {
	if cur == nil {
		return 0, fmt.Errorf("qlove: ExportDelta needs a cursor; use new(ExportCursor) for a first export")
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if cur.keys == nil {
		cur.keys = make(map[string]keyCursor)
	}
	if cur.engine != 0 && cur.engine != e.id {
		// The cursor was filled against a different engine (a rebuilt
		// worker restoring a persisted cursor): its incarnations,
		// generations and shard clocks mean nothing here and could
		// collide with this engine's counters. Zero the incarnations —
		// no live key has incarnation 0 — so every cursor key re-ships
		// as tombstone + bootstrap, the replacement a destination can
		// always fold, and drop the shard clocks so no shard is skipped.
		for k, kc := range cur.keys {
			kc.inc = 0
			cur.keys[k] = kc
		}
		cur.shards = nil
		cur.have = false
	}
	// Adaptive engines disable the O(1) shard skip: a pinned or escalated
	// key no longer lives on its hash-home shard, so per-shard cursor
	// reasoning (which shard owns which cursor key) does not hold. Every
	// shard scans, and assembleDelta reasons over the GLOBAL present set.
	have := cur.have && len(cur.shards) == len(e.shards) && e.adapt == nil
	if len(cur.shards) != len(e.shards) {
		cur.shards = make([]uint64, len(e.shards))
	}
	resps := make([]*shardDeltaResp, len(e.shards))
	if e.closed {
		// The shard goroutines are gone (Close waited for them), so their
		// final state is safe to read directly — the one way to flush a
		// last delta after shutdown.
		for i, s := range e.shards {
			resps[i] = s.deltaResp(&deltaCursorView{keys: cur.keys, have: have, mut: cur.shards[i]})
		}
	} else {
		chans := make([]chan engineCtlResp, len(e.shards))
		for i, s := range e.shards {
			chans[i] = make(chan engineCtlResp, 1)
			s.in <- engineMsg{ctl: &engineCtl{
				op:   ctlDelta,
				resp: chans[i],
				cur:  &deltaCursorView{keys: cur.keys, have: have, mut: cur.shards[i]},
			}}
		}
		for i, ch := range chans {
			resps[i] = (<-ch).delta
		}
	}
	return e.assembleDelta(w, cur, resps)
}

// assembleDelta turns the per-shard captures into sorted tombstone and
// delta frames and advances the cursor. Keys are INTERNAL names: a salted
// or escalated key ships one frame per sub-stream (each a single stream
// with real seal generations — the stable cursor identity that lets delta
// exports survive per-key salting), and receivers fold sub-streams back
// to logical keys at read time. On an adaptive engine no shard is ever
// skipped (see ExportDelta), so the union of the per-shard present sets is
// the complete resident set wherever each key currently lives; a key
// observed mid-migration (parked at its destination) is simply absent for
// that one export and bootstraps on the next — receivers treat
// from-generation-0 deltas as replacements, so the fold converges.
func (e *Engine) assembleDelta(w io.Writer, cur *ExportCursor, resps []*shardDeltaResp) (int64, error) {
	adaptive := e.adapt != nil
	present := make(map[string]uint64)
	caps := make(map[string]deltaCapture)
	for _, r := range resps {
		if r.skipped {
			continue
		}
		for k, inc := range r.present {
			present[k] = inc
		}
		for k, c := range r.changed {
			caps[k] = c
		}
	}
	var tombs, changed []string
	recreated := make(map[string]bool)
	for k, kc := range cur.keys {
		if !adaptive && resps[e.shardIndex(k)].skipped {
			continue // unchanged shard: every cursor key it owns is intact
		}
		inc, ok := present[k]
		if !ok {
			tombs = append(tombs, k)
		} else if inc != kc.inc {
			recreated[k] = true
		}
	}
	for k := range caps {
		changed = append(changed, k)
	}
	sort.Strings(tombs)
	sort.Strings(changed)

	enc := wire.NewEncoder(w)
	var n int64
	fail := func(err error) (int64, error) {
		// The destination's view is now unknown; reset so the next export
		// re-bootstraps (receivers treat from-generation-0 deltas as
		// replacements, so over-shipping is safe, under-shipping is not).
		*cur = ExportCursor{}
		return n, err
	}
	for _, k := range tombs {
		m, err := enc.EncodeTombstone(k)
		n += int64(m)
		if err != nil {
			return fail(fmt.Errorf("qlove: delta export tombstone %q: %w", k, err))
		}
		delete(cur.keys, k)
	}
	for _, k := range changed {
		c := caps[k]
		g := c.snap.SealGen()
		from := uint64(0)
		if kc, ok := cur.keys[k]; ok && !recreated[k] && kc.inc == c.inc && kc.gen <= g {
			from = kc.gen
		} else if recreated[k] {
			// The destination still holds the previous incarnation's
			// window; retire it before the bootstrap frame.
			m, err := enc.EncodeTombstone(k)
			n += int64(m)
			if err != nil {
				return fail(fmt.Errorf("qlove: delta export tombstone %q: %w", k, err))
			}
		}
		var m int
		var err error
		if g == 0 && c.snap.SubWindows() > 0 {
			// Generation-less capture: cannot anchor a delta, re-ship whole.
			m, err = enc.Encode(k, c.snap)
		} else {
			d, derr := wire.NewDelta(c.snap, from)
			if derr != nil {
				return fail(fmt.Errorf("qlove: delta export key %q: %w", k, derr))
			}
			m, err = enc.EncodeDelta(k, d)
		}
		n += int64(m)
		if err != nil {
			return fail(fmt.Errorf("qlove: delta export key %q: %w", k, err))
		}
		cur.keys[k] = keyCursor{inc: c.inc, gen: g, resident: c.snap.SubWindows()}
	}
	for i, r := range resps {
		cur.shards[i] = r.mutations
	}
	cur.have = true
	cur.engine = e.id
	return n, nil
}

// ImportSnapshots reads a wire blob of keyed captures (the exports of any
// number of remote engines) and merges it with this engine's own live
// capture into one aggregated view: keys present both remotely and
// locally combine their disjoint sub-streams; keys present on one side
// carry over. The local capture rides the control-op path, so importing
// never stops ingestion; the engine's own operators are not modified.
func (e *Engine) ImportSnapshots(r io.Reader) (EngineSnapshot, error) {
	var remote EngineSnapshot
	if _, err := remote.ReadFrom(r); err != nil {
		return EngineSnapshot{}, err
	}
	return e.Snapshot().Merge(remote)
}

// Tick flushes every timed key against the engine's current clock: period
// boundaries at or before it seal their sub-windows, expired sub-windows
// drop, and the evaluations fan into Results. The flush rides each
// shard's control queue, so it is ordered with ingest on every key —
// deterministic (fake-clock) tests and external schedulers drive timed
// windows through it without waiting for the shard tickers. Tick returns
// after every shard has flushed. It is a no-op for count-based engines.
// After Close it flushes the final state directly — sealing trailing
// sub-windows before a last Export — but the evaluations are discarded,
// since the Results channel has already closed.
func (e *Engine) Tick() {
	if !e.timed {
		return
	}
	e.mu.RLock()
	if !e.closed {
		resps := make([]chan engineCtlResp, len(e.shards))
		for i, s := range e.shards {
			resps[i] = make(chan engineCtlResp, 1)
			s.in <- engineMsg{ctl: &engineCtl{op: ctlTick, resp: resps[i]}}
		}
		e.mu.RUnlock()
		// The shard drains its queue even while Close runs, so the
		// responses always arrive; waiting outside the lock keeps Close
		// unblocked.
		for _, ch := range resps {
			<-ch
		}
		return
	}
	e.mu.RUnlock()
	// After Close the shard goroutines are gone; like post-Close Evict,
	// flushing mutates shard state directly and must exclude the
	// RLock-holding readers.
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.shards {
		s.timedFlush(s.now(), false)
	}
}

// Evict retires a key, returning whether it existed. The key's operator
// goes back to the shard's pool (arena and all) for the next new key.
// Under salted routing (engine-wide or adaptive) every resident stream of
// the key — base residue and sub-streams — is retired; any route override
// stays, so a later push re-creates the key under its current routing.
func (e *Engine) Evict(key string) bool {
	max := e.salt
	if ov := e.override(key); ov != nil && ov.maxSalt > max {
		max = ov.maxSalt
	}
	any := e.evictOne(key)
	for j := 0; j < max; j++ {
		if e.evictOne(saltedKey(key, byte(j))) {
			any = true
		}
	}
	return any
}

// evictOne retires one INTERNAL key name, probing the routed shard first
// and the hash home on a miss (mirroring queryOne).
func (e *Engine) evictOne(key string) bool {
	if e.evictAt(e.locateShard(key), key) {
		return true
	}
	if h := e.shardOf(key); h != e.locateShard(key) {
		return e.evictAt(h, key)
	}
	return false
}

func (e *Engine) evictAt(s *engineShard, key string) bool {
	e.mu.RLock()
	if !e.closed {
		resp := make(chan engineCtlResp, 1)
		s.in <- engineMsg{ctl: &engineCtl{op: ctlEvict, key: key, resp: resp}}
		e.mu.RUnlock()
		// The shard drains its queue even while Close runs, so the
		// response always arrives; waiting outside the lock keeps Close
		// unblocked.
		return (<-resp).ok
	}
	e.mu.RUnlock()
	// After Close the shard goroutines are gone, so this is the one
	// post-Close operation that MUTATES shard state (map delete + pool
	// put). It must exclude the RLock-holding readers (Snapshot, Query,
	// Keys), hence the write lock.
	e.mu.Lock()
	defer e.mu.Unlock()
	return s.evict(key)
}

// Keys returns the number of keys currently monitored. Under salted
// routing it counts resident sub-streams (a hot key may count up to
// RouteSalt times), matching the sum of ShardStats.ResidentKeys.
func (e *Engine) Keys() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	if e.closed {
		for _, s := range e.shards {
			n += len(s.keys)
		}
		return n
	}
	resps := make([]chan engineCtlResp, len(e.shards))
	for i, s := range e.shards {
		resps[i] = make(chan engineCtlResp, 1)
		s.in <- engineMsg{ctl: &engineCtl{op: ctlCount, resp: resps[i]}}
	}
	for _, ch := range resps {
		n += (<-ch).n
	}
	return n
}

// Close stops ingestion, waits for every shard to drain its queue and then
// closes the Results channel (results already buffered stay readable until
// the consumer drains them). Push returns ErrEngineClosed afterwards;
// Snapshot, Query, Evict and Keys keep working against the final state.
// Under BackpressureDrop shards never block on result delivery, so Close
// cannot deadlock on a slow consumer; under BackpressureBlock the consumer
// must keep draining Results until it closes, or Close waits behind the
// full channel with the blocked shards.
func (e *Engine) Close() {
	// Stop the adaptive controller BEFORE taking the write lock: a pass in
	// flight may itself need the lock for a route cutover, and would then
	// deadlock behind Close. Explicit Rebalance callers racing Close are
	// safe either way — every controller step re-checks closed under a
	// lock before touching a shard queue.
	e.stopAdapt()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
	close(e.results)
}

// run is a shard's single-writer loop: every operator in s.keys is touched
// exclusively here. With wall-clock TTL enabled a ticker wakes the loop on
// quiet shards so idle keys expire even with no deliveries at all; in
// timed mode a second ticker Flushes every key so evaluations fire on wall
// time even for keys receiving no traffic. Both tickers ride the same
// select as ingest, so ticks never stop ingestion — they interleave with
// it between batches.
func (s *engineShard) run() {
	var tick, flush <-chan time.Time
	if s.wallTTL > 0 {
		t := time.NewTicker(wallSweepInterval(s.wallTTL))
		defer t.Stop()
		tick = t.C
	}
	if s.tick > 0 {
		t := time.NewTicker(s.tick)
		defer t.Stop()
		flush = t.C
	}
	for {
		select {
		case msg, ok := <-s.in:
			if !ok {
				s.drainParked()
				return
			}
			s.handle(msg)
		case <-tick:
			s.wallSweep(s.now())
		case <-flush:
			s.timedFlush(s.now(), true)
		}
	}
}

// drainParked runs at shard exit: a migration aborted by Close leaves
// parking entries behind; their batches were accepted (Push succeeded),
// so they deliver through the normal mint path — losslessness holds even
// for a cutover torn down mid-flight.
func (s *engineShard) drainParked() {
	for name, ent := range s.keys {
		if !ent.parking {
			continue
		}
		parked := ent.park
		delete(s.keys, name)
		for _, bp := range parked {
			s.handle(engineMsg{key: name, buf: bp})
		}
	}
	s.counters.resident.Store(int64(len(s.keys)))
}

// handle processes one queued unit of shard work.
func (s *engineShard) handle(msg engineMsg) {
	if msg.ctl != nil {
		s.control(msg.ctl)
		return
	}
	if ent := s.keys[msg.key]; ent != nil && ent.parking {
		// Mid-migration: the operator is in flight from the source shard.
		// Park the batch; ctlInstall replays in arrival order.
		ent.park = append(ent.park, msg.buf)
		return
	}
	// One clock read per delivery, shared by the batch timestamp, the TTL
	// stamp and both overdue checks: the hot loop pays a single now() (a
	// mutex round-trip under injected fake clocks) and the whole delivery
	// sees one coherent instant.
	var now time.Time
	if s.wallTTL > 0 || s.tick > 0 {
		now = s.now()
	}
	ent, err := s.entry(msg.key)
	if err != nil {
		s.eng.failed.Add(1)
		s.counters.failed.Add(1)
		s.eng.lastErr.Store(engineErr{err})
	} else {
		s.clock++
		ent.lastSeen = s.clock
		if s.wallTTL > 0 {
			ent.lastAt = now
		}
		if ent.timed != nil {
			// The batch is stamped with the shard's clock at delivery;
			// boundary crossings at or before it seal and evaluate first,
			// exactly as a TimedMonitor handed the same timestamp would.
			ent.timed.PushBatch(now, *msg.buf, ent.emit)
		} else {
			ent.pusher.PushBatch(*msg.buf, ent.emit)
		}
		ent.batches++
		s.counters.delivered.Add(1)
		s.noteMutation(ent)
	}
	s.eng.bufs.Put(msg.buf)
	if s.ttl > 0 && s.clock >= s.nextSweep {
		s.sweep()
	}
	if s.wallTTL > 0 && !now.Before(s.nextWallAt) {
		s.wallSweep(now)
	}
	if s.tick > 0 && !now.Before(s.nextTickAt) {
		s.timedFlush(now, true)
	}
}

// noteMutation folds one key's operator-state change into the shard's
// delta-export bookkeeping: the mutation clock advances exactly when the
// key's capture would differ (a seal advanced SealGen, or expiry shrank
// the resident count). Policies without a seal clock conservatively mark
// the shard dirty on every touch.
func (s *engineShard) noteMutation(ent *keyEntry) {
	if ent.gens != nil {
		if g, r := ent.gens.SealGen(), ent.gens.SubWindowCount(); g != ent.gen || r != ent.resident {
			ent.gen, ent.resident = g, r
			s.mutations++
		}
	} else {
		s.mutations++
	}
}

// timedFlush drives every timed key's state machine to now: boundary
// crossings seal the in-flight sub-windows, expire departed ones, and —
// when deliver is set — fan evaluations into the engine's results
// channel. Sealed periods advance the same seal-generation bookkeeping
// batch deliveries do, so delta exports ship tick-driven seals exactly
// like traffic-driven ones. It runs on the shard goroutine between
// batches (from the flush ticker, a delivery piggyback, or a ctlTick
// control op), so it is ordered with ingest on every key the shard owns;
// post-Close flushes pass deliver=false because the Results channel is
// already closed.
func (s *engineShard) timedFlush(now time.Time, deliver bool) {
	for _, ent := range s.keys {
		if ent.timed == nil {
			continue
		}
		emit := ent.emit
		if !deliver {
			emit = nil
		}
		ent.timed.Flush(now, emit)
		s.noteMutation(ent)
	}
	s.nextTickAt = now.Add(s.tick)
}

// sweepInterval spaces TTL sweeps: half the TTL, so an idle key is
// reclaimed at most ~1.5×TTL deliveries after its last batch while each
// O(keys) scan amortizes over many deliveries.
func sweepInterval(ttl uint64) uint64 { return (ttl + 1) / 2 }

// wallSweepInterval is the wall-clock analogue (floored so a tiny TTL
// cannot arm a busy-looping ticker).
func wallSweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 2
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// sweep evicts every key idle for more than the TTL. It runs on the shard
// goroutine between batches, so it is ordered with ingest like any other
// shard work; evicted operators recycle through the pool.
func (s *engineShard) sweep() {
	for k, ent := range s.keys {
		if !ent.parking && s.clock-ent.lastSeen > s.ttl {
			s.evict(k)
		}
	}
	s.nextSweep = s.clock + sweepInterval(s.ttl)
}

// wallSweep evicts every key wall-clock idle for more than the TTL.
// Parking entries are exempt (a migration in flight is not an idle key).
func (s *engineShard) wallSweep(now time.Time) {
	for k, ent := range s.keys {
		if !ent.parking && now.Sub(ent.lastAt) > s.wallTTL {
			s.evict(k)
		}
	}
	s.nextWallAt = now.Add(wallSweepInterval(s.wallTTL))
}

// entry returns the key's state, minting operator + pusher on first use.
func (s *engineShard) entry(key string) (*keyEntry, error) {
	if ent, ok := s.keys[key]; ok {
		return ent, nil
	}
	var pol Policy
	if s.pool != nil {
		pol = s.pool.Get()
	} else {
		var err error
		if pol, err = s.factory(); err != nil {
			return nil, fmt.Errorf("qlove: policy for key %q: %w", key, err)
		} else if pol == nil {
			return nil, fmt.Errorf("qlove: nil policy for key %q", key)
		}
	}
	ent := &keyEntry{}
	if s.timedWindow > 0 {
		tp, err := stream.NewTimedPusher(pol, s.timedWindow, s.timedPeriod)
		if err != nil {
			return nil, err
		}
		ent.timed = tp
	} else {
		pusher, err := stream.NewPusher(pol, s.eng.spec)
		if err != nil {
			return nil, err
		}
		ent.pusher = pusher
	}
	ent.snap, _ = pol.(Snapshotter)
	ent.gens, _ = pol.(sealGenerator)
	ent.inc = s.eng.incSeq.Add(1)
	s.mutations++
	if s.wallTTL > 0 {
		ent.lastAt = s.now()
	}
	ent.emit = s.makeEmit(logicalKey(key))
	s.keys[key] = ent
	s.counters.resident.Store(int64(len(s.keys)))
	return ent, nil
}

// makeEmit builds a key's evaluation-delivery closure. One closure per key,
// not per batch: the emit path stays allocation-free at steady state.
// Results carry the LOGICAL key name (the salt suffix is an internal
// detail). The closure captures THIS shard's counters, so a migrated
// operator gets a fresh one from ctlInstall — evaluations account where
// they are delivered from.
func (s *engineShard) makeEmit(base string) func(stream.Evaluation) {
	eng := s.eng
	if eng.block {
		// Lossless delivery: a full Results channel stalls the shard (and,
		// transitively, producers) instead of shedding the evaluation. The
		// stall is accounted so overload is observable via Stats.
		return func(ev stream.Evaluation) {
			kr := KeyedResult{Key: base, Result: Result{Evaluation: ev.Index, Estimates: ev.Estimates}}
			select {
			case eng.results <- kr:
			default:
				start := time.Now()
				eng.results <- kr
				s.counters.blockedNanos.Add(uint64(time.Since(start)))
			}
			s.counters.evalsDelivered.Add(1)
		}
	}
	return func(ev stream.Evaluation) {
		select {
		case eng.results <- KeyedResult{Key: base, Result: Result{Evaluation: ev.Index, Estimates: ev.Estimates}}:
			s.counters.evalsDelivered.Add(1)
		default:
			s.counters.evalsDropped.Add(1)
		}
	}
}

func (s *engineShard) control(ctl *engineCtl) {
	switch ctl.op {
	case ctlSnapshot:
		snaps := make(map[string]Snapshot, len(s.keys))
		for k, ent := range s.keys {
			if ent.snap != nil {
				snaps[k] = ent.snap.Snapshot()
			}
		}
		ctl.resp <- engineCtlResp{snaps: snaps}
	case ctlQuery:
		if ent := s.keys[ctl.key]; ent != nil && ent.snap != nil {
			ctl.resp <- engineCtlResp{snap: ent.snap.Snapshot(), ok: true}
			return
		}
		ctl.resp <- engineCtlResp{}
	case ctlEvict:
		ctl.resp <- engineCtlResp{ok: s.evict(ctl.key)}
	case ctlCount:
		ctl.resp <- engineCtlResp{n: len(s.keys)}
	case ctlDelta:
		ctl.resp <- engineCtlResp{delta: s.deltaResp(ctl.cur)}
	case ctlTick:
		s.timedFlush(s.now(), true)
		ctl.resp <- engineCtlResp{}
	case ctlPrepare:
		if s.keys[ctl.key] != nil {
			ctl.resp <- engineCtlResp{} // name already resident: refuse
			return
		}
		s.keys[ctl.key] = &keyEntry{parking: true}
		s.counters.resident.Store(int64(len(s.keys)))
		ctl.resp <- engineCtlResp{ok: true}
	case ctlHandoff:
		if ent := s.keys[ctl.key]; ent != nil && !ent.parking {
			delete(s.keys, ctl.key)
			s.mutations++
			s.counters.resident.Store(int64(len(s.keys)))
			ctl.resp <- engineCtlResp{ent: ent, ok: true}
			return
		}
		ctl.resp <- engineCtlResp{}
	case ctlInstall:
		s.install(ctl.key, ctl.ent)
		ctl.resp <- engineCtlResp{}
	case ctlSample:
		ctl.resp <- engineCtlResp{loads: s.sampleLoads(ctl.n)}
	case ctlExists:
		ent := s.keys[ctl.key]
		ctl.resp <- engineCtlResp{ok: ent != nil && !ent.parking}
	}
}

// install completes a migration on the destination shard: attach the
// handed-off operator (nil when the source stream was not resident — the
// key then simply mints fresh on replay, never resurrecting stale seals)
// and replay the parked batches in arrival order through the normal
// delivery path, so clocks, TTL stamps, stats and mutation bookkeeping
// all advance exactly as for direct deliveries.
func (s *engineShard) install(name string, ent *keyEntry) {
	var parked []*[]float64
	if p := s.keys[name]; p != nil && p.parking {
		parked = p.park
		delete(s.keys, name)
	}
	if ent != nil {
		ent.parking, ent.park = false, nil
		ent.emit = s.makeEmit(logicalKey(name))
		ent.lastSeen = s.clock
		if s.wallTTL > 0 {
			ent.lastAt = s.now()
		}
		s.keys[name] = ent
		s.mutations++
		s.counters.resident.Store(int64(len(s.keys)))
	}
	for _, bp := range parked {
		s.handle(engineMsg{key: name, buf: bp})
	}
}

// sampleLoads attributes deliveries since the previous sample to keys,
// returning the top n by interval load (ties break on key name, so a
// quiesced engine samples deterministically). Sampling RESETS the
// attribution counters of every key, sampled or not, so each pass sees
// exactly one interval.
func (s *engineShard) sampleLoads(n int) []KeyLoad {
	var loads []KeyLoad
	for k, ent := range s.keys {
		d := ent.batches - ent.sampled
		ent.sampled = ent.batches
		if d == 0 || ent.parking {
			continue
		}
		loads = append(loads, KeyLoad{Key: k, Batches: d})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Batches != loads[j].Batches {
			return loads[i].Batches > loads[j].Batches
		}
		return loads[i].Key < loads[j].Key
	})
	if n > 0 && len(loads) > n {
		loads = loads[:n]
	}
	return loads
}

// deltaResp computes this shard's contribution to a delta export: capture
// only the keys the cursor has not seen at their current generation. When
// the cursor's mutation clock matches, the scan is skipped outright —
// O(1), whatever the shard's key count.
func (s *engineShard) deltaResp(cur *deltaCursorView) *shardDeltaResp {
	if cur.have && cur.mut == s.mutations {
		return &shardDeltaResp{skipped: true, mutations: s.mutations}
	}
	r := &shardDeltaResp{
		mutations: s.mutations,
		changed:   make(map[string]deltaCapture),
		present:   make(map[string]uint64, len(s.keys)),
	}
	for k, ent := range s.keys {
		if ent.snap == nil {
			continue
		}
		r.present[k] = ent.inc
		kc, ok := cur.keys[k]
		if ok && kc.inc == ent.inc && ent.gens != nil &&
			ent.gens.SealGen() <= kc.gen && ent.gens.SubWindowCount() == kc.resident {
			continue // unchanged since the cursor
		}
		r.changed[k] = deltaCapture{snap: ent.snap.Snapshot(), inc: ent.inc}
	}
	return r
}

// evict removes a key and recycles its operator. Evicting a PARKING entry
// (an explicit Evict racing a migration) drops the key along with its
// parked batches — consistent with evicting the stream they would have
// joined.
func (s *engineShard) evict(key string) bool {
	ent, ok := s.keys[key]
	if !ok {
		return false
	}
	if ent.parking {
		delete(s.keys, key)
		s.counters.resident.Store(int64(len(s.keys)))
		for _, bp := range ent.park {
			s.eng.bufs.Put(bp)
		}
		return true
	}
	delete(s.keys, key)
	s.mutations++
	s.counters.resident.Store(int64(len(s.keys)))
	if s.pool != nil {
		if cp, ok := ent.policy().(*core.Policy); ok {
			s.pool.Put(cp)
		}
	}
	return true
}

// EngineSnapshot is a point-in-time capture of every snapshot-capable key
// the engine monitors. It is immutable and safe to read from any
// goroutine.
type EngineSnapshot struct {
	keys map[string]Snapshot
}

// Query answers one key's configured quantiles from the capture.
func (s EngineSnapshot) Query(key string) ([]float64, bool) {
	sn, ok := s.keys[key]
	if !ok {
		return nil, false
	}
	return sn.Estimates(), true
}

// Get returns one key's raw snapshot, e.g. to Merge it with the same key's
// capture from another engine or datacenter.
func (s EngineSnapshot) Get(key string) (Snapshot, bool) {
	sn, ok := s.keys[key]
	return sn, ok
}

// Len returns the number of captured keys.
func (s EngineSnapshot) Len() int { return len(s.keys) }

// Keys returns the captured key names, sorted.
func (s EngineSnapshot) Keys() []string {
	out := make([]string, 0, len(s.keys))
	for k := range s.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteTo serializes the capture as one wire blob — a sequence of keyed
// frames in sorted key order, so identical captures produce identical
// bytes. It implements io.WriterTo; the blob is what Export ships across
// process boundaries and ReadFrom (or cmd/qlove-agg) consumes.
func (s EngineSnapshot) WriteTo(w io.Writer) (int64, error) {
	enc := wire.NewEncoder(w)
	var n int64
	for _, k := range s.Keys() {
		m, err := enc.Encode(k, s.keys[k])
		n += int64(m)
		if err != nil {
			return n, fmt.Errorf("qlove: export key %q: %w", k, err)
		}
	}
	return n, nil
}

// ReadFrom decodes keyed frames from r until EOF, merging them into the
// capture key-wise (frames for a key already present — read earlier or
// from a previous ReadFrom — merge as disjoint sub-streams of that key).
// It implements io.ReaderFrom and is the aggregator's accumulation
// primitive: start from the zero EngineSnapshot and fold every worker's
// blob in. On a decode or merge error the capture retains the frames
// merged so far and the byte count says how much input was consumed.
func (s *EngineSnapshot) ReadFrom(r io.Reader) (int64, error) {
	dec := wire.NewDecoder(r)
	for {
		key, sn, err := dec.Decode()
		if err == io.EOF {
			return dec.Consumed(), nil
		}
		if err != nil {
			return dec.Consumed(), fmt.Errorf("qlove: import: %w", err)
		}
		if s.keys == nil {
			s.keys = make(map[string]Snapshot)
		}
		if prev, ok := s.keys[key]; ok {
			m, err := prev.Merge(sn)
			if err != nil {
				return dec.Consumed(), fmt.Errorf("qlove: import key %q: %w", key, err)
			}
			sn = m
		}
		s.keys[key] = sn
	}
}

// Merge combines two captures key-wise: keys present in both merge their
// snapshots (disjoint sub-streams of one logical key — e.g. the same
// service monitored by two engines); keys present in one carry over.
func (s EngineSnapshot) Merge(o EngineSnapshot) (EngineSnapshot, error) {
	out := EngineSnapshot{keys: make(map[string]Snapshot, len(s.keys)+len(o.keys))}
	for k, sn := range s.keys {
		out.keys[k] = sn
	}
	for k, sn := range o.keys {
		if prev, ok := out.keys[k]; ok {
			m, err := prev.Merge(sn)
			if err != nil {
				return EngineSnapshot{}, fmt.Errorf("key %q: %w", k, err)
			}
			out.keys[k] = m
			continue
		}
		out.keys[k] = sn
	}
	return out, nil
}
